//! Seeded closed-loop load harness.
//!
//! Generates a reproducible request stream (frames drawn per-seed over an
//! SNR mixture), paces submissions at a configurable offered rate against
//! a virtual arrival clock, collects responses opportunistically while
//! pacing, and reduces everything to a [`LoadReport`] — throughput,
//! latency percentiles, deadline-miss rate, shed/degradation mix, and the
//! accuracy cost of degradation (bit errors against the generator's
//! ground truth).

use crate::metrics::MetricsSnapshot;
use crate::request::{DetectionRequest, DetectionResponse};
use crate::runtime::ServeRuntime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::DetectionStats;
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation, REAL_TIME_BUDGET};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload description for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Transmit antennas.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Constellation.
    pub modulation: Modulation,
    /// SNR mixture: requests cycle through these operating points.
    pub snr_grid_db: Vec<f64>,
    /// Total requests to offer.
    pub n_requests: usize,
    /// Offered arrival rate in requests/s; `0.0` submits as fast as the
    /// queue accepts (saturation probe).
    pub offered_rate_hz: f64,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Seed for the frame stream.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            n_tx: 8,
            n_rx: 8,
            modulation: Modulation::Qam4,
            snr_grid_db: vec![6.0, 10.0, 14.0],
            n_requests: 1000,
            offered_rate_hz: 0.0,
            deadline: REAL_TIME_BUDGET,
            seed: 0x5EC0DE,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Responses collected.
    pub served: u64,
    /// Wall-clock of the whole run (submission through drain).
    pub wall: Duration,
    /// Served responses per second of wall-clock.
    pub throughput_hz: f64,
    /// Exact median end-to-end latency in µs (from per-response samples,
    /// not histogram buckets).
    pub p50_latency_us: f64,
    /// Exact 99th-percentile end-to-end latency in µs.
    pub p99_latency_us: f64,
    /// Fraction of served responses that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Served count per registry tier, in ladder order (label, count).
    pub tiers: Vec<(Arc<str>, u64)>,
    /// Bit errors across served responses (ground truth known here).
    pub bit_errors: u64,
    /// Total information bits across served responses.
    pub total_bits: u64,
    /// Aggregated decoder instrumentation (via [`DetectionStats`] `Sum`).
    pub stats: DetectionStats,
    /// Runtime metrics at the end of the run.
    pub snapshot: MetricsSnapshot,
}

impl LoadReport {
    /// Bit error rate over served traffic.
    pub fn ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.total_bits as f64
        }
    }

    /// Served count of the tier labelled `label` (0 if absent).
    pub fn tier_count(&self, label: &str) -> u64 {
        self.tiers
            .iter()
            .find(|(l, _)| &**l == label)
            .map_or(0, |&(_, n)| n)
    }
}

/// Build the deterministic request stream for a config.
pub fn build_requests(cfg: &LoadConfig, constellation: &Constellation) -> Vec<DetectionRequest> {
    assert!(!cfg.snr_grid_db.is_empty(), "SNR grid must be non-empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_requests)
        .map(|i| {
            let snr = cfg.snr_grid_db[i % cfg.snr_grid_db.len()];
            let sigma2 = noise_variance(snr, cfg.n_tx);
            let frame = FrameData::generate(cfg.n_rx, cfg.n_tx, constellation, sigma2, &mut rng);
            DetectionRequest::new(i as u64, frame, snr, cfg.deadline)
        })
        .collect()
}

/// Offer `cfg.n_requests` requests to `rt` at the configured rate, drain
/// all responses, and reduce to a [`LoadReport`]. The runtime is left
/// running (callers own shutdown).
pub fn run_load(rt: &ServeRuntime, cfg: &LoadConfig, constellation: &Constellation) -> LoadReport {
    let requests = build_requests(cfg, constellation);
    let offered = requests.len() as u64;
    let period = if cfg.offered_rate_hz > 0.0 {
        Some(Duration::from_secs_f64(1.0 / cfg.offered_rate_hz))
    } else {
        None
    };

    let mut responses: Vec<DetectionResponse> = Vec::with_capacity(requests.len());
    let mut shed = 0u64;
    let t0 = Instant::now();
    let mut next_arrival = t0;
    for req in requests {
        if let Some(period) = period {
            // Open-loop pacing: wait for the virtual arrival instant,
            // harvesting finished responses instead of sleeping.
            while Instant::now() < next_arrival {
                match rt.try_collect() {
                    Some(r) => responses.push(r),
                    None => std::hint::spin_loop(),
                }
            }
            next_arrival += period;
        }
        if rt.submit(req).is_err() {
            shed += 1;
        }
        while let Some(r) = rt.try_collect() {
            responses.push(r);
        }
    }
    // Drain the tail.
    let mut last_progress = Instant::now();
    while (responses.len() as u64) + shed < offered {
        match rt.collect_timeout(Duration::from_millis(20)) {
            Some(r) => {
                responses.push(r);
                last_progress = Instant::now();
            }
            None => {
                assert!(
                    last_progress.elapsed() < Duration::from_secs(10),
                    "runtime stalled: {} of {} responses after shedding {}",
                    responses.len(),
                    offered,
                    shed
                );
            }
        }
    }
    let wall = t0.elapsed();

    let served = responses.len() as u64;
    let mut latencies_us: Vec<f64> = responses
        .iter()
        .map(|r| r.latency.as_secs_f64() * 1e6)
        .collect();
    latencies_us.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            0.0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * q).round() as usize]
        }
    };
    let missed = responses.iter().filter(|r| r.deadline_missed).count() as u64;
    let tiers: Vec<(Arc<str>, u64)> = rt
        .tier_labels()
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let n = responses.iter().filter(|r| r.tier == i).count() as u64;
            (label, n)
        })
        .collect();
    let bits_per_frame = (cfg.n_tx * constellation.bits_per_symbol()) as u64;
    let bit_errors: u64 = responses
        .iter()
        .map(|r| {
            r.request
                .frame
                .bit_errors(&r.detection.indices, constellation)
        })
        .sum();
    // The satellite API in action: fold every response's stats in one go.
    let stats: DetectionStats = responses.iter().map(|r| &r.detection.stats).sum();

    LoadReport {
        offered,
        shed,
        served,
        wall,
        throughput_hz: served as f64 / wall.as_secs_f64().max(1e-9),
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        deadline_miss_rate: if served == 0 {
            0.0
        } else {
            missed as f64 / served as f64
        },
        tiers,
        bit_errors,
        total_bits: served * bits_per_frame,
        stats,
        snapshot: rt.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::ServeConfig;

    #[test]
    fn request_stream_is_deterministic() {
        let cfg = LoadConfig {
            n_requests: 6,
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let a = build_requests(&cfg, &c);
        let b = build_requests(&cfg, &c);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.snr_db, y.snr_db);
            assert_eq!(x.frame.tx.indices, y.frame.tx.indices);
            assert_eq!(x.frame.y, y.frame.y);
        }
        // The SNR mixture cycles.
        assert_eq!(a[0].snr_db, 6.0);
        assert_eq!(a[1].snr_db, 10.0);
        assert_eq!(a[3].snr_db, 6.0);
    }

    #[test]
    fn firehose_run_serves_everything() {
        let cfg = LoadConfig {
            n_tx: 4,
            n_rx: 4,
            n_requests: 60,
            snr_grid_db: vec![12.0],
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(cfg.n_requests),
            c.clone(),
        );
        let report = run_load(&rt, &cfg, &c);
        rt.shutdown();
        assert_eq!(report.offered, 60);
        assert_eq!(report.shed, 0, "queue sized for the whole run");
        assert_eq!(report.served, 60);
        let total: u64 = report.tiers.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 60, "every response attributed to a tier");
        assert!(report.throughput_hz > 0.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
        assert!(report.stats.nodes_generated > 0);
        assert_eq!(report.total_bits, 60 * 8);
    }
}
