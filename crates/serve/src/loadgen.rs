//! Seeded closed-loop load harness.
//!
//! Generates a reproducible request stream (frames drawn per-seed over an
//! SNR mixture), paces submissions at a configurable offered rate against
//! a virtual arrival clock, collects responses opportunistically while
//! pacing, and reduces everything to a [`LoadReport`] — throughput,
//! latency percentiles, deadline-miss rate, shed/degradation mix, and the
//! accuracy cost of degradation (bit errors against the generator's
//! ground truth).
//!
//! The **frame mode** replays an LTE-like resource grid
//! ([`sd_wireless::ResourceGrid`]): each coherence block becomes one
//! [`FrameRequest`] submitted whole through
//! [`ServeRuntime::submit_frame`], reduced to a [`FrameLoadReport`].
//! [`explode_frames`] flattens the same traffic into per-vector
//! [`DetectionRequest`]s so the two submission shapes can be compared on
//! bit-identical workloads ([`run_request_stream`] drives the per-vector
//! arm).

use crate::metrics::MetricsSnapshot;
use crate::request::{DetectionRequest, DetectionResponse, FrameRequest, FrameResponse};
use crate::runtime::ServeRuntime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::DetectionStats;
use sd_wireless::{
    noise_variance, Constellation, FrameData, GridConfig, Modulation, ResourceGrid,
    REAL_TIME_BUDGET,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload description for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Transmit antennas.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Constellation.
    pub modulation: Modulation,
    /// SNR mixture: requests cycle through these operating points.
    pub snr_grid_db: Vec<f64>,
    /// Total requests to offer.
    pub n_requests: usize,
    /// Offered arrival rate in requests/s; `0.0` submits as fast as the
    /// queue accepts (saturation probe).
    pub offered_rate_hz: f64,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Seed for the frame stream.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            n_tx: 8,
            n_rx: 8,
            modulation: Modulation::Qam4,
            snr_grid_db: vec![6.0, 10.0, 14.0],
            n_requests: 1000,
            offered_rate_hz: 0.0,
            deadline: REAL_TIME_BUDGET,
            seed: 0x5EC0DE,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests offered.
    pub offered: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Responses collected.
    pub served: u64,
    /// Wall-clock of the whole run (submission through drain).
    pub wall: Duration,
    /// Served responses per second of wall-clock.
    pub throughput_hz: f64,
    /// Exact median end-to-end latency in µs (from per-response samples,
    /// not histogram buckets).
    pub p50_latency_us: f64,
    /// Exact 99th-percentile end-to-end latency in µs.
    pub p99_latency_us: f64,
    /// Fraction of served responses that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Served count per registry tier, in ladder order (label, count).
    pub tiers: Vec<(Arc<str>, u64)>,
    /// Bit errors across served responses (ground truth known here).
    pub bit_errors: u64,
    /// Total information bits across served responses.
    pub total_bits: u64,
    /// Aggregated decoder instrumentation (via [`DetectionStats`] `Sum`).
    pub stats: DetectionStats,
    /// Runtime metrics at the end of the run.
    pub snapshot: MetricsSnapshot,
}

impl LoadReport {
    /// Bit error rate over served traffic.
    pub fn ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.total_bits as f64
        }
    }

    /// Served count of the tier labelled `label` (0 if absent).
    pub fn tier_count(&self, label: &str) -> u64 {
        self.tiers
            .iter()
            .find(|(l, _)| &**l == label)
            .map_or(0, |&(_, n)| n)
    }

    /// Fraction of served responses the anytime engine truncated at its
    /// decode budget (0 with anytime off — the reactive ladder never
    /// truncates).
    pub fn truncated_rate(&self) -> f64 {
        if self.snapshot.served == 0 {
            0.0
        } else {
            self.snapshot.budget_exhausted as f64 / self.snapshot.served as f64
        }
    }
}

/// Build the deterministic request stream for a config.
pub fn build_requests(cfg: &LoadConfig, constellation: &Constellation) -> Vec<DetectionRequest> {
    assert!(!cfg.snr_grid_db.is_empty(), "SNR grid must be non-empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_requests)
        .map(|i| {
            let snr = cfg.snr_grid_db[i % cfg.snr_grid_db.len()];
            let sigma2 = noise_variance(snr, cfg.n_tx);
            let frame = FrameData::generate(cfg.n_rx, cfg.n_tx, constellation, sigma2, &mut rng);
            DetectionRequest::new(i as u64, frame, snr, cfg.deadline)
        })
        .collect()
}

/// Build a deterministic **channel-coherent** request stream: requests
/// come in coherence blocks of `block` consecutive arrivals sharing one
/// channel matrix `H` (fresh symbols and noise per request), cycling the
/// SNR mixture per block. This is the traffic shape affinity routing and
/// the per-shard [`crate::prep_cache`] are built for — every request in a
/// block hashes to the same shard and, after the leader's miss, hits its
/// cached factorization. `block = 1` degenerates to [`build_requests`]'
/// i.i.d. shape.
pub fn build_coherent_requests(
    cfg: &LoadConfig,
    block: usize,
    constellation: &Constellation,
) -> Vec<DetectionRequest> {
    assert!(!cfg.snr_grid_db.is_empty(), "SNR grid must be non-empty");
    assert!(block >= 1, "coherence block must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_requests);
    let mut leader: Option<FrameData> = None;
    for i in 0..cfg.n_requests {
        let snr = cfg.snr_grid_db[(i / block) % cfg.snr_grid_db.len()];
        let sigma2 = noise_variance(snr, cfg.n_tx);
        let fresh = FrameData::generate(cfg.n_rx, cfg.n_tx, constellation, sigma2, &mut rng);
        let frame = if i % block == 0 {
            leader = Some(fresh.clone());
            fresh
        } else {
            // Follower: the leader's channel, this arrival's symbols.
            let mut f = leader.as_ref().expect("leader set at block start").clone();
            f.y = fresh.y;
            f.tx = fresh.tx;
            f.noise_variance = fresh.noise_variance;
            f
        };
        out.push(DetectionRequest::new(i as u64, frame, snr, cfg.deadline));
    }
    out
}

/// Offer `cfg.n_requests` requests to `rt` at the configured rate, drain
/// all responses, and reduce to a [`LoadReport`]. The runtime is left
/// running (callers own shutdown).
pub fn run_load(rt: &ServeRuntime, cfg: &LoadConfig, constellation: &Constellation) -> LoadReport {
    run_request_stream(
        rt,
        build_requests(cfg, constellation),
        cfg.offered_rate_hz,
        constellation,
    )
}

/// Offer a pre-built request stream at `offered_rate_hz` (0 = firehose),
/// drain all responses, and reduce to a [`LoadReport`]. This is the
/// per-vector arm of the frame-vs-vector comparison: feed it
/// [`explode_frames`] of the same grid traffic the frame arm replays.
pub fn run_request_stream(
    rt: &ServeRuntime,
    requests: Vec<DetectionRequest>,
    offered_rate_hz: f64,
    constellation: &Constellation,
) -> LoadReport {
    let offered = requests.len() as u64;
    let period = if offered_rate_hz > 0.0 {
        Some(Duration::from_secs_f64(1.0 / offered_rate_hz))
    } else {
        None
    };

    let mut responses: Vec<DetectionResponse> = Vec::with_capacity(requests.len());
    let mut shed = 0u64;
    let t0 = Instant::now();
    let mut next_arrival = t0;
    for req in requests {
        if let Some(period) = period {
            // Open-loop pacing: wait for the virtual arrival instant,
            // harvesting finished responses instead of sleeping.
            while Instant::now() < next_arrival {
                match rt.try_collect() {
                    Some(r) => responses.push(r),
                    None => std::hint::spin_loop(),
                }
            }
            next_arrival += period;
        }
        if rt.submit(req).is_err() {
            shed += 1;
        }
        while let Some(r) = rt.try_collect() {
            responses.push(r);
        }
    }
    // Drain the tail.
    let mut last_progress = Instant::now();
    while (responses.len() as u64) + shed < offered {
        match rt.collect_timeout(Duration::from_millis(20)) {
            Some(r) => {
                responses.push(r);
                last_progress = Instant::now();
            }
            None => {
                assert!(
                    last_progress.elapsed() < Duration::from_secs(10),
                    "runtime stalled: {} of {} responses after shedding {}",
                    responses.len(),
                    offered,
                    shed
                );
            }
        }
    }
    let wall = t0.elapsed();

    let served = responses.len() as u64;
    let mut latencies_us: Vec<f64> = responses
        .iter()
        .map(|r| r.latency.as_secs_f64() * 1e6)
        .collect();
    latencies_us.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            0.0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * q).round() as usize]
        }
    };
    let missed = responses.iter().filter(|r| r.deadline_missed).count() as u64;
    let tiers: Vec<(Arc<str>, u64)> = rt
        .tier_labels()
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let n = responses.iter().filter(|r| r.tier == i).count() as u64;
            (label, n)
        })
        .collect();
    let bit_errors: u64 = responses
        .iter()
        .map(|r| {
            r.request
                .frame
                .bit_errors(&r.detection.indices, constellation)
        })
        .sum();
    let total_bits: u64 = responses
        .iter()
        .map(|r| r.request.frame.tx.bits.len() as u64)
        .sum();
    // The satellite API in action: fold every response's stats in one go.
    let stats: DetectionStats = responses.iter().map(|r| &r.detection.stats).sum();

    LoadReport {
        offered,
        shed,
        served,
        wall,
        throughput_hz: served as f64 / wall.as_secs_f64().max(1e-9),
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        deadline_miss_rate: if served == 0 {
            0.0
        } else {
            missed as f64 / served as f64
        },
        tiers,
        bit_errors,
        total_bits,
        stats,
        snapshot: rt.metrics(),
    }
}

/// Workload description for one frame-mode (resource-grid) load run.
#[derive(Clone, Debug)]
pub struct FrameLoadConfig {
    /// The resource grid to replay; each coherence block is one frame.
    pub grid: GridConfig,
    /// Constellation.
    pub modulation: Modulation,
    /// Offered frame arrival rate in frames/s; `0.0` submits as fast as
    /// the queue accepts (saturation probe).
    pub offered_rate_hz: f64,
    /// Per-frame (whole-block) deadline.
    pub deadline: Duration,
    /// Seed for the grid realization.
    pub seed: u64,
}

impl Default for FrameLoadConfig {
    fn default() -> Self {
        FrameLoadConfig {
            grid: GridConfig::new(64, 4, 4, 4).with_coherence(16, 4),
            modulation: Modulation::Qam4,
            offered_rate_hz: 0.0,
            deadline: REAL_TIME_BUDGET,
            seed: 0xF4A3E,
        }
    }
}

/// Outcome of one frame-mode load run.
#[derive(Clone, Debug)]
pub struct FrameLoadReport {
    /// Frames offered.
    pub offered_frames: u64,
    /// Frames shed at admission.
    pub shed_frames: u64,
    /// Frame responses collected.
    pub served_frames: u64,
    /// Subcarriers decoded across served frames.
    pub subcarriers: u64,
    /// Wall-clock of the whole run (submission through drain).
    pub wall: Duration,
    /// Served *subcarriers* per second of wall-clock — directly
    /// comparable to [`LoadReport::throughput_hz`] on exploded traffic.
    pub throughput_hz: f64,
    /// Exact median frame end-to-end latency in µs.
    pub p50_latency_us: f64,
    /// Exact 99th-percentile frame end-to-end latency in µs.
    pub p99_latency_us: f64,
    /// Fraction of served frames that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Served frame count per registry tier, in ladder order.
    pub tiers: Vec<(Arc<str>, u64)>,
    /// Bit errors across served subcarriers (ground truth known here).
    pub bit_errors: u64,
    /// Total information bits across served subcarriers.
    pub total_bits: u64,
    /// Channel preparations across served frames.
    pub prep_factors: u64,
    /// Aggregated decoder instrumentation.
    pub stats: DetectionStats,
    /// Runtime metrics at the end of the run.
    pub snapshot: MetricsSnapshot,
}

impl FrameLoadReport {
    /// Bit error rate over served traffic.
    pub fn ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.total_bits as f64
        }
    }

    /// Subcarriers served per channel preparation.
    pub fn prep_amortization(&self) -> f64 {
        if self.prep_factors == 0 {
            0.0
        } else {
            self.subcarriers as f64 / self.prep_factors as f64
        }
    }

    /// Fraction of served subcarriers the anytime engine truncated at
    /// its decode budget (0 with anytime off).
    pub fn truncated_rate(&self) -> f64 {
        if self.snapshot.served == 0 {
            0.0
        } else {
            self.snapshot.budget_exhausted as f64 / self.snapshot.served as f64
        }
    }
}

/// Build the deterministic frame stream for a config: one
/// [`FrameRequest`] per coherence block of the generated grid, in traffic
/// order, at the block's mean ripple SNR.
pub fn build_frame_requests(
    cfg: &FrameLoadConfig,
    constellation: &Constellation,
) -> Vec<FrameRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = ResourceGrid::generate(&cfg.grid, constellation, &mut rng);
    grid.blocks
        .into_iter()
        .enumerate()
        .map(|(i, b)| FrameRequest::new(i as u64, b.frames, b.snr_db, cfg.deadline))
        .collect()
}

/// Flatten a frame stream into the identical per-vector request stream:
/// same subcarriers in the same order, each carrying its frame's SNR
/// operating point and deadline. The control arm of the frame-vs-vector
/// benchmark submits exactly this.
pub fn explode_frames(frames: &[FrameRequest]) -> Vec<DetectionRequest> {
    let mut id = 0u64;
    let mut out = Vec::with_capacity(frames.iter().map(FrameRequest::block_len).sum());
    for fr in frames {
        for f in &fr.subcarriers {
            out.push(DetectionRequest::new(id, f.clone(), fr.snr_db, fr.deadline));
            id += 1;
        }
    }
    out
}

/// Offer the config's frame stream to `rt` at the configured rate, drain
/// all frame responses, and reduce to a [`FrameLoadReport`]. The runtime
/// is left running (callers own shutdown).
pub fn run_frame_load(
    rt: &ServeRuntime,
    cfg: &FrameLoadConfig,
    constellation: &Constellation,
) -> FrameLoadReport {
    let requests = build_frame_requests(cfg, constellation);
    let offered = requests.len() as u64;
    let period = if cfg.offered_rate_hz > 0.0 {
        Some(Duration::from_secs_f64(1.0 / cfg.offered_rate_hz))
    } else {
        None
    };

    let mut responses: Vec<FrameResponse> = Vec::with_capacity(requests.len());
    let mut shed = 0u64;
    let t0 = Instant::now();
    let mut next_arrival = t0;
    for req in requests {
        if let Some(period) = period {
            while Instant::now() < next_arrival {
                match rt.try_collect_frame() {
                    Some(r) => responses.push(r),
                    None => std::hint::spin_loop(),
                }
            }
            next_arrival += period;
        }
        if rt.submit_frame(req).is_err() {
            shed += 1;
        }
        while let Some(r) = rt.try_collect_frame() {
            responses.push(r);
        }
    }
    let mut last_progress = Instant::now();
    while (responses.len() as u64) + shed < offered {
        match rt.collect_frame_timeout(Duration::from_millis(20)) {
            Some(r) => {
                responses.push(r);
                last_progress = Instant::now();
            }
            None => {
                assert!(
                    last_progress.elapsed() < Duration::from_secs(10),
                    "runtime stalled: {} of {} frames after shedding {}",
                    responses.len(),
                    offered,
                    shed
                );
            }
        }
    }
    let wall = t0.elapsed();

    let served_frames = responses.len() as u64;
    let subcarriers: u64 = responses.iter().map(|r| r.detections.len() as u64).sum();
    let mut latencies_us: Vec<f64> = responses
        .iter()
        .map(|r| r.latency.as_secs_f64() * 1e6)
        .collect();
    latencies_us.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            0.0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * q).round() as usize]
        }
    };
    let missed = responses.iter().filter(|r| r.deadline_missed).count() as u64;
    let tiers: Vec<(Arc<str>, u64)> = rt
        .tier_labels()
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let n = responses.iter().filter(|r| r.tier == i).count() as u64;
            (label, n)
        })
        .collect();
    let mut bit_errors = 0u64;
    let mut total_bits = 0u64;
    for r in &responses {
        for (f, d) in r.request.subcarriers.iter().zip(r.detections.iter()) {
            bit_errors += f.bit_errors(&d.indices, constellation);
            total_bits += f.tx.bits.len() as u64;
        }
    }
    let prep_factors: u64 = responses.iter().map(|r| r.prep_factors as u64).sum();
    let stats: DetectionStats = responses
        .iter()
        .flat_map(|r| r.detections.iter().map(|d| &d.stats))
        .sum();

    FrameLoadReport {
        offered_frames: offered,
        shed_frames: shed,
        served_frames,
        subcarriers,
        wall,
        throughput_hz: subcarriers as f64 / wall.as_secs_f64().max(1e-9),
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        deadline_miss_rate: if served_frames == 0 {
            0.0
        } else {
            missed as f64 / served_frames as f64
        },
        tiers,
        bit_errors,
        total_bits,
        prep_factors,
        stats,
        snapshot: rt.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::ServeConfig;

    #[test]
    fn request_stream_is_deterministic() {
        let cfg = LoadConfig {
            n_requests: 6,
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let a = build_requests(&cfg, &c);
        let b = build_requests(&cfg, &c);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.snr_db, y.snr_db);
            assert_eq!(x.frame.tx.indices, y.frame.tx.indices);
            assert_eq!(x.frame.y, y.frame.y);
        }
        // The SNR mixture cycles.
        assert_eq!(a[0].snr_db, 6.0);
        assert_eq!(a[1].snr_db, 10.0);
        assert_eq!(a[3].snr_db, 6.0);
    }

    #[test]
    fn coherent_stream_repeats_channels_in_blocks() {
        let cfg = LoadConfig {
            n_tx: 4,
            n_rx: 4,
            n_requests: 12,
            snr_grid_db: vec![6.0, 14.0],
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let a = build_coherent_requests(&cfg, 4, &c);
        let b = build_coherent_requests(&cfg, 4, &c);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.frame.h == y.frame.h && x.frame.y == y.frame.y, "seeded");
        }
        for blk in a.chunks(4) {
            for r in &blk[1..] {
                assert!(r.frame.h == blk[0].frame.h, "block shares the leader H");
                assert!(r.frame.y != blk[0].frame.y, "fresh observation per request");
                assert_eq!(r.snr_db, blk[0].snr_db, "one operating point per block");
            }
        }
        assert!(a[0].frame.h != a[4].frame.h, "fresh H per block");
        assert_eq!(a[0].snr_db, 6.0);
        assert_eq!(a[4].snr_db, 14.0, "SNR mixture cycles per block");
        // block = 1 degenerates to the i.i.d. stream.
        let iid = build_coherent_requests(&cfg, 1, &c);
        assert!(iid[0].frame.h != iid[1].frame.h);
    }

    #[test]
    fn frame_stream_is_deterministic_and_explodes_in_order() {
        let cfg = FrameLoadConfig {
            grid: GridConfig::new(8, 2, 2, 2).with_coherence(4, 2),
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let a = build_frame_requests(&cfg, &c);
        let b = build_frame_requests(&cfg, &c);
        assert_eq!(a.len(), 2, "two frequency blocks x one time block");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.snr_db, y.snr_db);
            for (fx, fy) in x.subcarriers.iter().zip(y.subcarriers.iter()) {
                assert!(fx.h == fy.h && fx.y == fy.y);
            }
        }
        let exploded = explode_frames(&a);
        assert_eq!(exploded.len(), 16);
        let mut k = 0;
        for fr in &a {
            for f in &fr.subcarriers {
                assert_eq!(exploded[k].id, k as u64);
                assert!(exploded[k].frame.y == f.y, "order preserved at {k}");
                assert_eq!(exploded[k].snr_db, fr.snr_db);
                k += 1;
            }
        }
    }

    #[test]
    fn firehose_frame_run_serves_everything() {
        let cfg = FrameLoadConfig {
            grid: GridConfig::new(16, 2, 4, 4)
                .with_coherence(8, 2)
                .with_snr(12.0, 0.0),
            deadline: Duration::from_secs(1),
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(16),
            c.clone(),
        );
        let report = run_frame_load(&rt, &cfg, &c);
        rt.shutdown();
        assert_eq!(report.offered_frames, 2);
        assert_eq!(report.shed_frames, 0);
        assert_eq!(report.served_frames, 2);
        assert_eq!(report.subcarriers, 32);
        assert_eq!(report.prep_factors, 2, "one QR per coherence block");
        assert!((report.prep_amortization() - 16.0).abs() < 1e-12);
        assert!(report.throughput_hz > 0.0);
        assert_eq!(report.total_bits, 32 * 4 * 2, "4 tx antennas x 2 bits each");
        let total: u64 = report.tiers.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2, "every frame attributed to a tier");
    }

    #[test]
    fn firehose_run_serves_everything() {
        let cfg = LoadConfig {
            n_tx: 4,
            n_rx: 4,
            n_requests: 60,
            snr_grid_db: vec![12.0],
            ..Default::default()
        };
        let c = Constellation::new(cfg.modulation);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(cfg.n_requests),
            c.clone(),
        );
        let report = run_load(&rt, &cfg, &c);
        rt.shutdown();
        assert_eq!(report.offered, 60);
        assert_eq!(report.shed, 0, "queue sized for the whole run");
        assert_eq!(report.served, 60);
        let total: u64 = report.tiers.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 60, "every response attributed to a tier");
        assert!(report.throughput_hz > 0.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
        assert!(report.stats.nodes_generated > 0);
        assert_eq!(report.total_bits, 60 * 8);
    }
}
