//! Bounded MPMC queue with batched consumption and a pause gate.
//!
//! One `Mutex<VecDeque>` + `Condvar` — deliberately simple, allocation-free
//! once the deque has grown to capacity, and fair enough for a handful of
//! workers. Producers never block: [`BoundedQueue::try_push`] either
//! enqueues or hands the item straight back (explicit backpressure).
//! Consumers drain in batches via [`BoundedQueue::pop_batch`], which
//! implements the flush-on-size-or-age policy described in
//! [`crate::batcher`].
//!
//! The pause gate freezes consumers (producers still enqueue) so tests can
//! build a deterministic backlog; [`BoundedQueue::close`] clears the gate
//! and lets consumers drain everything before they observe shutdown —
//! drain-then-join, never drop.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`BoundedQueue::try_push`] refused an item.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity; the item is returned with the observed depth.
    Full(T, usize),
    /// Queue closed; the item is returned.
    Closed(T),
}

/// Outcome of a bounded-wait batch pop ([`BoundedQueue::pop_batch_timeout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPop {
    /// At least one item was drained into `out`.
    Batch,
    /// The first-item wait elapsed with nothing available (the sharded
    /// worker's cue to go look at a steal victim).
    Empty,
    /// Closed and fully drained — the consumer's signal to exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// Bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue: returns the item on a full or closed queue.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            let depth = g.items.len();
            return Err(PushError::Full(item, depth));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue all of `items` (used for the unbounded response side, where
    /// every item corresponds to an admitted request, so depth is already
    /// bounded by admission control). One lock acquisition per batch.
    pub fn push_all(&self, items: &mut Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        for item in items.drain(..) {
            g.items.push_back(item);
        }
        drop(g);
        self.not_empty.notify_all();
    }

    /// Pop a single item without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        if g.paused {
            return None;
        }
        g.items.pop_front()
    }

    /// Pop a single item, waiting up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.paused {
                if let Some(item) = g.items.pop_front() {
                    return Some(item);
                }
                if g.closed {
                    return None;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g2, _timeout) = self.not_empty.wait_timeout(g, deadline - now).unwrap();
            g = g2;
        }
    }

    /// Drain up to `max` items into `out`, blocking until at least one is
    /// available. After the first item, waits up to `max_wait` for the
    /// batch to fill (flush on size or age). Returns `false` only when the
    /// queue is closed **and** fully drained — the consumer's signal to
    /// exit.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize, max_wait: Duration) -> bool {
        match self.pop_batch_inner(out, max, max_wait, None) {
            BatchPop::Batch => true,
            BatchPop::Closed => false,
            BatchPop::Empty => unreachable!("unbounded first wait never returns Empty"),
        }
    }

    /// [`BoundedQueue::pop_batch`] with a bounded first-item wait: when
    /// nothing arrives within `first_wait`, returns [`BatchPop::Empty`]
    /// instead of blocking forever. This is the sharded worker loop's
    /// primitive — drain my shard or, after a short poll, go steal.
    pub fn pop_batch_timeout(
        &self,
        out: &mut Vec<T>,
        max: usize,
        max_wait: Duration,
        first_wait: Duration,
    ) -> BatchPop {
        self.pop_batch_inner(out, max, max_wait, Some(first_wait))
    }

    fn pop_batch_inner(
        &self,
        out: &mut Vec<T>,
        max: usize,
        max_wait: Duration,
        first_wait: Option<Duration>,
    ) -> BatchPop {
        debug_assert!(max >= 1);
        let first_deadline = first_wait.map(|w| Instant::now() + w);
        let mut g = self.inner.lock().unwrap();
        // Phase 1: wait for the first item (respecting the pause gate) —
        // indefinitely, or up to `first_wait` when one was given.
        loop {
            if !g.paused {
                if !g.items.is_empty() {
                    break;
                }
                if g.closed {
                    return BatchPop::Closed;
                }
            }
            match first_deadline {
                None => g = self.not_empty.wait(g).unwrap(),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return BatchPop::Empty;
                    }
                    let (g2, _timeout) = self.not_empty.wait_timeout(g, deadline - now).unwrap();
                    g = g2;
                }
            }
        }
        out.push(g.items.pop_front().unwrap());
        // Phase 2: age-bounded accumulation up to `max` (still respecting
        // the pause gate — a pause landing mid-batch must not keep feeding
        // this consumer).
        let deadline = Instant::now() + max_wait;
        while out.len() < max {
            if !g.paused {
                if let Some(item) = g.items.pop_front() {
                    out.push(item);
                    continue;
                }
                if g.closed {
                    break;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g2, _timeout) = self.not_empty.wait_timeout(g, deadline - now).unwrap();
            g = g2;
        }
        BatchPop::Batch
    }

    /// Work stealing: move up to `max` items — but never more than half
    /// the backlog (rounded up) — from the front of this queue into `out`,
    /// without blocking. Items leave in FIFO order and whole (a frame is
    /// one item, so blocks are never split). Returns the number taken; a
    /// paused queue yields nothing, so deterministic-backlog tests see no
    /// back-door drain.
    pub fn steal_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut g = self.inner.lock().unwrap();
        if g.paused {
            return 0;
        }
        let take = max.min(g.items.len().div_ceil(2));
        for _ in 0..take {
            out.push(g.items.pop_front().unwrap());
        }
        take
    }

    /// Freeze consumers; producers continue to enqueue (up to capacity).
    pub fn pause(&self) {
        self.inner.lock().unwrap().paused = true;
    }

    /// Release the pause gate.
    pub fn resume(&self) {
        self.inner.lock().unwrap().paused = false;
        self.not_empty.notify_all();
    }

    /// Stop accepting new items. Consumers drain the backlog and then see
    /// end-of-stream; an active pause gate is cleared so shutdown always
    /// drains.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        g.paused = false;
        drop(g);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn full_queue_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item, depth)) => {
                assert_eq!(item, 3);
                assert_eq!(depth, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn closed_queue_returns_item_and_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        let mut batch = Vec::new();
        assert!(q.pop_batch(&mut batch, 8, Duration::ZERO));
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert!(
            !q.pop_batch(&mut batch, 8, Duration::ZERO),
            "drained+closed"
        );
    }

    #[test]
    fn batch_flushes_on_size() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(&mut batch, 4, Duration::from_secs(1)));
        assert_eq!(batch, vec![0, 1, 2, 3], "size bound flushes immediately");
    }

    #[test]
    fn batch_flushes_on_age() {
        let q = BoundedQueue::new(16);
        q.try_push(7).unwrap();
        let mut batch = Vec::new();
        let t0 = Instant::now();
        assert!(q.pop_batch(&mut batch, 4, Duration::from_millis(5)));
        assert_eq!(batch, vec![7], "partial batch after max_wait");
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn pause_gates_consumers_not_producers() {
        let q = BoundedQueue::new(8);
        q.pause();
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_pop(), None, "paused consumer sees nothing");
        q.resume();
        assert_eq!(q.try_pop(), Some(1));
    }

    #[test]
    fn pause_gates_batch_accumulation() {
        // A pause landing between the first item and the rest of the batch
        // must stop the accumulation loop from draining further items.
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut batch = Vec::new();
            assert!(q2.pop_batch(&mut batch, 4, Duration::from_millis(200)));
            batch
        });
        // Let the consumer grab item 1 and enter phase 2, then gate it and
        // enqueue more work.
        std::thread::sleep(Duration::from_millis(50));
        q.pause();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        let batch = h.join().unwrap();
        assert_eq!(batch, vec![1], "paused accumulation must not drain");
        assert_eq!(q.len(), 2, "items pushed under pause stay queued");
    }

    #[test]
    fn close_clears_pause_for_drain() {
        let q = Arc::new(BoundedQueue::new(8));
        q.pause();
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut batch = Vec::new();
            let mut n = 0;
            while q2.pop_batch(&mut batch, 4, Duration::ZERO) {
                n += batch.len();
                batch.clear();
            }
            n
        });
        // Consumer is gated; closing must release it and drain the item.
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn bounded_first_wait_reports_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let mut batch = Vec::new();
        let t0 = Instant::now();
        assert_eq!(
            q.pop_batch_timeout(&mut batch, 4, Duration::ZERO, Duration::from_millis(5)),
            BatchPop::Empty
        );
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert!(batch.is_empty());
        q.try_push(9).unwrap();
        assert_eq!(
            q.pop_batch_timeout(&mut batch, 4, Duration::ZERO, Duration::from_millis(5)),
            BatchPop::Batch
        );
        assert_eq!(batch, vec![9]);
        batch.clear();
        q.close();
        assert_eq!(
            q.pop_batch_timeout(&mut batch, 4, Duration::ZERO, Duration::from_millis(5)),
            BatchPop::Closed
        );
    }

    #[test]
    fn steal_takes_at_most_half_the_backlog() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut loot = Vec::new();
        // ceil(5/2) = 3 available to a thief, FIFO from the front.
        assert_eq!(q.steal_into(&mut loot, 8), 3);
        assert_eq!(loot, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
        // A smaller ask is honored exactly.
        loot.clear();
        assert_eq!(q.steal_into(&mut loot, 1), 1);
        assert_eq!(loot, vec![3]);
    }

    #[test]
    fn steal_respects_pause_and_empty() {
        let q = BoundedQueue::new(8);
        let mut loot = Vec::new();
        assert_eq!(q.steal_into(&mut loot, 4), 0, "empty queue");
        q.try_push(1).unwrap();
        q.pause();
        assert_eq!(q.steal_into(&mut loot, 4), 0, "paused queue is gated");
        q.resume();
        assert_eq!(q.steal_into(&mut loot, 4), 1);
        assert_eq!(loot, vec![1]);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(64));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            let mut batch = Vec::new();
            while q2.pop_batch(&mut batch, 8, Duration::from_millis(1)) {
                got.append(&mut batch);
            }
            got
        });
        for i in 0..100 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_, _)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
