//! Export surfaces for [`MetricsSnapshot`]: Prometheus text exposition
//! and JSON lines.
//!
//! Both renderers are dependency-free string builders (the workspace
//! carries no JSON library), covering the full snapshot: admission and
//! serve counters, deadline accounting, batch shape, latency / queue-wait
//! quantiles, per-tier serve counts with the cost-model
//! `|predicted − actual|` error quantiles, and the aggregated decoder
//! stats. [`validate_json`] is a minimal recursive-descent JSON checker
//! used by the demo's smoke mode (and tests) to prove the emitted line
//! actually parses.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Rendering used by the export helpers and the periodic reporter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// Prometheus text exposition format (`# HELP` / `# TYPE` / samples).
    Prometheus,
    /// One self-contained JSON object per snapshot.
    JsonLines,
}

/// Render a snapshot in the requested format.
pub fn render(snap: &MetricsSnapshot, format: ExportFormat) -> String {
    match format {
        ExportFormat::Prometheus => prometheus_text(snap),
        ExportFormat::JsonLines => json_line(snap),
    }
}

/// JSON numbers must be finite; NaN/∞ degrade to 0.
fn json_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Escape a string for a JSON string literal or a Prometheus label value.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counter samples carry the conventional `_total` suffix; quantile
/// summaries use a `quantile` label; per-tier samples a `tier` label.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut o = String::with_capacity(2048);
    let mut counter = |name: &str, help: &str, v: u64| {
        let _ = writeln!(o, "# HELP {name} {help}");
        let _ = writeln!(o, "# TYPE {name} counter");
        let _ = writeln!(o, "{name} {v}");
    };
    counter(
        "sd_serve_accepted_total",
        "Requests admitted into the ingress queue.",
        snap.accepted,
    );
    counter(
        "sd_serve_rejected_full_total",
        "Requests shed at admission (queue full).",
        snap.rejected_full,
    );
    counter(
        "sd_serve_rejected_shutdown_total",
        "Requests refused during shutdown.",
        snap.rejected_shutdown,
    );
    counter(
        "sd_serve_rejected_predicted_late_total",
        "Requests shed by predictive admission (predicted wait exceeded the deadline).",
        snap.rejected_predicted,
    );
    counter("sd_serve_served_total", "Responses produced.", snap.served);
    counter(
        "sd_serve_deadline_missed_total",
        "Responses that exceeded their deadline.",
        snap.deadline_missed,
    );
    counter(
        "sd_serve_quality_exact_total",
        "Responses whose search ran to completion (exact quality).",
        snap.quality_exact,
    );
    counter(
        "sd_serve_budget_exhausted_total",
        "Responses truncated by their decode budget (anytime best-so-far).",
        snap.budget_exhausted,
    );
    counter(
        "sd_serve_prep_cache_hits_total",
        "Requests whose preparation reused a cached channel factorization.",
        snap.prep_cache_hits,
    );
    counter(
        "sd_serve_prep_cache_misses_total",
        "Requests whose preparation factored and cached their channel.",
        snap.prep_cache_misses,
    );
    counter(
        "sd_serve_prep_cache_bypass_total",
        "Requests prepared outside the channel cache.",
        snap.prep_cache_bypass,
    );
    counter(
        "sd_serve_batches_total",
        "Batches drained from the ingress queue.",
        snap.batches,
    );
    counter(
        "sd_serve_frames_accepted_total",
        "Frame (coherence-block) requests admitted.",
        snap.frames_accepted,
    );
    counter(
        "sd_serve_frames_rejected_full_total",
        "Frame requests shed at admission (queue full).",
        snap.frames_rejected_full,
    );
    counter(
        "sd_serve_frames_rejected_shutdown_total",
        "Frame requests refused during shutdown.",
        snap.frames_rejected_shutdown,
    );
    counter(
        "sd_serve_frames_rejected_predicted_late_total",
        "Frame requests shed by predictive admission.",
        snap.frames_rejected_predicted,
    );
    counter(
        "sd_serve_frames_served_total",
        "Frame responses produced.",
        snap.frames_served,
    );
    counter(
        "sd_serve_frames_fused_total",
        "Frames decoded by the cross-subcarrier fused block path.",
        snap.frames_fused,
    );
    counter(
        "sd_serve_frames_deadline_missed_total",
        "Frames that exceeded their deadline.",
        snap.frames_deadline_missed,
    );
    counter(
        "sd_serve_frame_subcarriers_total",
        "Subcarriers decoded through the frame path.",
        snap.frame_subcarriers,
    );
    counter(
        "sd_serve_frame_prep_factors_total",
        "Channel preparations performed by the frame path.",
        snap.frame_prep_factors,
    );
    counter(
        "sd_serve_nodes_generated_total",
        "Search-tree nodes generated across all served decodes.",
        snap.stats.nodes_generated,
    );
    counter(
        "sd_serve_budget_replans_total",
        "Core-budget plan changes by the adaptive controller.",
        snap.budget_replans,
    );

    let mut gauge = |name: &str, help: &str, v: f64| {
        let _ = writeln!(o, "# HELP {name} {help}");
        let _ = writeln!(o, "# TYPE {name} gauge");
        let _ = writeln!(o, "{name} {}", json_f64(v));
    };
    gauge(
        "sd_serve_deadline_miss_rate",
        "deadline_missed / served.",
        snap.deadline_miss_rate,
    );
    gauge(
        "sd_serve_mean_batch_size",
        "Mean requests per batch.",
        snap.mean_batch_size,
    );
    gauge(
        "sd_serve_queue_depth",
        "Ingress backlog at snapshot time.",
        snap.queue_depth as f64,
    );
    gauge(
        "sd_serve_mean_frame_size",
        "Mean subcarriers per served frame.",
        snap.mean_frame_size,
    );
    gauge(
        "sd_serve_prep_amortization",
        "Subcarriers served per channel preparation on the frame path.",
        snap.prep_amortization,
    );
    gauge(
        "sd_serve_host_cores",
        "Logical cores the host reported at startup.",
        snap.host_cores as f64,
    );
    gauge(
        "sd_serve_n_shards",
        "Number of runtime shards.",
        snap.n_shards as f64,
    );
    gauge(
        "sd_serve_core_budget",
        "Subtree-decoder lane allowance planned by the controller.",
        snap.core_budget as f64,
    );

    // Per-shard rows: the shard index is the label, so one scrape shows
    // where affinity routing concentrated the traffic and how much of it
    // moved by stealing.
    let shard_counter = |o: &mut String, name: &str, help: &str, pick: &dyn Fn(usize) -> u64| {
        let _ = writeln!(o, "# HELP {name} {help}");
        let _ = writeln!(o, "# TYPE {name} counter");
        for i in 0..snap.shards.len() {
            let _ = writeln!(o, "{name}{{shard=\"{i}\"}} {}", pick(i));
        }
    };
    shard_counter(
        &mut o,
        "sd_serve_shard_routed_total",
        "Items admission routed to this shard.",
        &|i| snap.shards[i].routed,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_served_total",
        "Items served by this shard's workers.",
        &|i| snap.shards[i].served,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_affinity_served_total",
        "Items served from this shard's own affinity-routed queue.",
        &|i| snap.shards[i].affinity_served,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_stolen_in_total",
        "Items this shard's workers stole from other shards.",
        &|i| snap.shards[i].stolen_in,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_stolen_out_total",
        "Items other shards stole from this queue.",
        &|i| snap.shards[i].stolen_out,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_prep_hits_total",
        "Prep-cache hits on this shard.",
        &|i| snap.shards[i].prep_hits,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_prep_misses_total",
        "Prep-cache misses on this shard.",
        &|i| snap.shards[i].prep_misses,
    );
    shard_counter(
        &mut o,
        "sd_serve_shard_prep_bypass_total",
        "Prep-cache bypasses on this shard.",
        &|i| snap.shards[i].prep_bypass,
    );
    let _ = writeln!(
        o,
        "# HELP sd_serve_shard_queue_depth This shard queue's backlog at snapshot time."
    );
    let _ = writeln!(o, "# TYPE sd_serve_shard_queue_depth gauge");
    for (i, s) in snap.shards.iter().enumerate() {
        let _ = writeln!(
            o,
            "sd_serve_shard_queue_depth{{shard=\"{i}\"}} {}",
            s.queue_depth
        );
    }

    let _ = writeln!(
        o,
        "# HELP sd_serve_latency_us End-to-end latency quantiles (bucket upper bound)."
    );
    let _ = writeln!(o, "# TYPE sd_serve_latency_us summary");
    let _ = writeln!(
        o,
        "sd_serve_latency_us{{quantile=\"0.5\"}} {}",
        json_f64(snap.p50_latency_us)
    );
    let _ = writeln!(
        o,
        "sd_serve_latency_us{{quantile=\"0.99\"}} {}",
        json_f64(snap.p99_latency_us)
    );
    let _ = writeln!(
        o,
        "# HELP sd_serve_frame_latency_us Frame end-to-end latency quantiles (bucket upper bound)."
    );
    let _ = writeln!(o, "# TYPE sd_serve_frame_latency_us summary");
    let _ = writeln!(
        o,
        "sd_serve_frame_latency_us{{quantile=\"0.99\"}} {}",
        json_f64(snap.p99_frame_latency_us)
    );
    let _ = writeln!(
        o,
        "# HELP sd_serve_queue_wait_us Queue-wait quantiles (bucket upper bound)."
    );
    let _ = writeln!(o, "# TYPE sd_serve_queue_wait_us summary");
    let _ = writeln!(
        o,
        "sd_serve_queue_wait_us{{quantile=\"0.99\"}} {}",
        json_f64(snap.p99_queue_wait_us)
    );

    let _ = writeln!(
        o,
        "# HELP sd_serve_tier_served_total Responses served per ladder tier."
    );
    let _ = writeln!(o, "# TYPE sd_serve_tier_served_total counter");
    for t in &snap.tiers {
        let _ = writeln!(
            o,
            "sd_serve_tier_served_total{{tier=\"{}\"}} {}",
            escape(&t.label),
            t.served
        );
    }
    let _ = writeln!(
        o,
        "# HELP sd_serve_tier_predict_err_us Cost-model |predicted-actual| decode time per tier."
    );
    let _ = writeln!(o, "# TYPE sd_serve_tier_predict_err_us summary");
    for t in &snap.tiers {
        let _ = writeln!(
            o,
            "sd_serve_tier_predict_err_us{{tier=\"{}\",quantile=\"0.5\"}} {}",
            escape(&t.label),
            json_f64(t.p50_predict_err_us)
        );
        let _ = writeln!(
            o,
            "sd_serve_tier_predict_err_us{{tier=\"{}\",quantile=\"0.99\"}} {}",
            escape(&t.label),
            json_f64(t.p99_predict_err_us)
        );
    }
    o
}

/// Render a snapshot as one self-contained JSON object (no trailing
/// newline) — the JSON-lines record format.
pub fn json_line(snap: &MetricsSnapshot) -> String {
    let mut o = String::with_capacity(1024);
    let _ = write!(
        o,
        "{{\"accepted\":{},\"rejected_full\":{},\"rejected_shutdown\":{},\
         \"rejected_predicted_late\":{},\"served\":{},\
         \"deadline_missed\":{},\"deadline_miss_rate\":{},\
         \"quality_exact\":{},\"budget_exhausted\":{},\"prep_cache_hits\":{},\
         \"prep_cache_misses\":{},\"prep_cache_bypass\":{},\"batches\":{},\
         \"mean_batch_size\":{},\"frames_accepted\":{},\"frames_rejected_full\":{},\
         \"frames_rejected_shutdown\":{},\"frames_rejected_predicted_late\":{},\
         \"frames_served\":{},\"frames_fused\":{},\
         \"frames_deadline_missed\":{},\"frame_subcarriers\":{},\
         \"frame_prep_factors\":{},\"mean_frame_size\":{},\"prep_amortization\":{},\
         \"p99_frame_latency_us\":{},\"queue_depth\":{},\"p50_latency_us\":{},\
         \"p99_latency_us\":{},\"p99_queue_wait_us\":{},\"nodes_generated\":{},\
         \"leaves_reached\":{},\"host_cores\":{},\"n_shards\":{},\"core_budget\":{},\
         \"budget_replans\":{},\"shards\":[",
        snap.accepted,
        snap.rejected_full,
        snap.rejected_shutdown,
        snap.rejected_predicted,
        snap.served,
        snap.deadline_missed,
        json_f64(snap.deadline_miss_rate),
        snap.quality_exact,
        snap.budget_exhausted,
        snap.prep_cache_hits,
        snap.prep_cache_misses,
        snap.prep_cache_bypass,
        snap.batches,
        json_f64(snap.mean_batch_size),
        snap.frames_accepted,
        snap.frames_rejected_full,
        snap.frames_rejected_shutdown,
        snap.frames_rejected_predicted,
        snap.frames_served,
        snap.frames_fused,
        snap.frames_deadline_missed,
        snap.frame_subcarriers,
        snap.frame_prep_factors,
        json_f64(snap.mean_frame_size),
        json_f64(snap.prep_amortization),
        json_f64(snap.p99_frame_latency_us),
        snap.queue_depth,
        json_f64(snap.p50_latency_us),
        json_f64(snap.p99_latency_us),
        json_f64(snap.p99_queue_wait_us),
        snap.stats.nodes_generated,
        snap.stats.leaves_reached,
        snap.host_cores,
        snap.n_shards,
        snap.core_budget,
        snap.budget_replans,
    );
    for (i, s) in snap.shards.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"routed\":{},\"served\":{},\"affinity_served\":{},\"stolen_in\":{},\
             \"stolen_out\":{},\"prep_hits\":{},\"prep_misses\":{},\"prep_bypass\":{},\
             \"queue_depth\":{}}}",
            s.routed,
            s.served,
            s.affinity_served,
            s.stolen_in,
            s.stolen_out,
            s.prep_hits,
            s.prep_misses,
            s.prep_bypass,
            s.queue_depth,
        );
    }
    o.push_str("],\"tiers\":[");
    for (i, t) in snap.tiers.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"label\":\"{}\",\"served\":{},\"p50_predict_err_us\":{},\
             \"p99_predict_err_us\":{}}}",
            escape(&t.label),
            t.served,
            json_f64(t.p50_predict_err_us),
            json_f64(t.p99_predict_err_us),
        );
    }
    o.push_str("]}");
    o
}

/// Check that `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a description on
/// the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{} at byte {}", what, self.pos)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.b.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.b.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.pos += 1; // '['
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.b.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.b.get(self.pos) {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.b.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        // Leading zeros are invalid JSON ("01"), a bare zero is fine.
        if self.b[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        if self.b.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.b.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.b.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.b.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.b.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, TierSnapshot};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = Metrics::new(vec![Arc::from("exact"), Arc::from("mmse")], 2, 4);
        m.shards[0].routed.store(6, Ordering::Relaxed);
        m.shards[0].served.store(5, Ordering::Relaxed);
        m.shards[0].affinity_served.store(4, Ordering::Relaxed);
        m.shards[0].stolen_out.store(1, Ordering::Relaxed);
        m.shards[1].routed.store(4, Ordering::Relaxed);
        m.shards[1].served.store(4, Ordering::Relaxed);
        m.shards[1].stolen_in.store(1, Ordering::Relaxed);
        m.core_budget.store(4, Ordering::Relaxed);
        m.budget_replans.store(3, Ordering::Relaxed);
        m.accepted.store(10, Ordering::Relaxed);
        m.served.store(9, Ordering::Relaxed);
        m.deadline_missed.store(1, Ordering::Relaxed);
        m.quality_exact.store(8, Ordering::Relaxed);
        m.budget_exhausted.store(1, Ordering::Relaxed);
        m.batches.store(3, Ordering::Relaxed);
        m.batch_items.store(9, Ordering::Relaxed);
        m.latency_ns.record(150_000);
        m.prep_cache_hits.store(5, Ordering::Relaxed);
        m.prep_cache_misses.store(3, Ordering::Relaxed);
        m.prep_cache_bypass.store(1, Ordering::Relaxed);
        m.frames_accepted.store(2, Ordering::Relaxed);
        m.frames_served.store(2, Ordering::Relaxed);
        m.frames_fused.store(1, Ordering::Relaxed);
        m.frame_subcarriers.store(32, Ordering::Relaxed);
        m.frame_prep_factors.store(2, Ordering::Relaxed);
        m.frame_latency_ns.record(500_000);
        m.tiers[0].served.fetch_add(7, Ordering::Relaxed);
        m.tiers[0].predict_err_ns.record(40_000);
        m.tiers[1].served.fetch_add(2, Ordering::Relaxed);
        m.snapshot(&[2, 0])
    }

    #[test]
    fn prometheus_text_contains_all_families() {
        let text = prometheus_text(&sample_snapshot());
        for needle in [
            "sd_serve_served_total 9",
            "sd_serve_accepted_total 10",
            "sd_serve_deadline_missed_total 1",
            "sd_serve_quality_exact_total 8",
            "sd_serve_budget_exhausted_total 1",
            "sd_serve_queue_depth 2",
            "sd_serve_prep_cache_hits_total 5",
            "sd_serve_prep_cache_misses_total 3",
            "sd_serve_prep_cache_bypass_total 1",
            "sd_serve_frames_accepted_total 2",
            "sd_serve_frames_served_total 2",
            "sd_serve_frames_fused_total 1",
            "sd_serve_frame_subcarriers_total 32",
            "sd_serve_frame_prep_factors_total 2",
            "sd_serve_prep_amortization 16",
            "sd_serve_mean_frame_size 16",
            "sd_serve_frame_latency_us{quantile=\"0.99\"}",
            "sd_serve_tier_served_total{tier=\"exact\"} 7",
            "sd_serve_tier_served_total{tier=\"mmse\"} 2",
            "sd_serve_tier_predict_err_us{tier=\"exact\",quantile=\"0.5\"}",
            "sd_serve_latency_us{quantile=\"0.99\"}",
            "# TYPE sd_serve_served_total counter",
            "# TYPE sd_serve_deadline_miss_rate gauge",
            "sd_serve_host_cores 4",
            "sd_serve_n_shards 2",
            "sd_serve_core_budget 4",
            "sd_serve_budget_replans_total 3",
            "sd_serve_shard_routed_total{shard=\"0\"} 6",
            "sd_serve_shard_routed_total{shard=\"1\"} 4",
            "sd_serve_shard_served_total{shard=\"0\"} 5",
            "sd_serve_shard_affinity_served_total{shard=\"0\"} 4",
            "sd_serve_shard_stolen_in_total{shard=\"1\"} 1",
            "sd_serve_shard_stolen_out_total{shard=\"0\"} 1",
            "sd_serve_shard_queue_depth{shard=\"0\"} 2",
            "sd_serve_shard_queue_depth{shard=\"1\"} 0",
            "# TYPE sd_serve_shard_routed_total counter",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_line_is_valid_json_with_tiers() {
        let snap = sample_snapshot();
        let line = json_line(&snap);
        validate_json(&line).expect("snapshot JSON must parse");
        assert!(!line.contains('\n'), "JSON-lines records are single-line");
        assert!(line.contains("\"served\":9"));
        assert!(line.contains("\"quality_exact\":8"));
        assert!(line.contains("\"budget_exhausted\":1"));
        assert!(line.contains("\"prep_cache_hits\":5"));
        assert!(line.contains("\"prep_cache_misses\":3"));
        assert!(line.contains("\"prep_cache_bypass\":1"));
        assert!(line.contains("\"frames_served\":2"));
        assert!(line.contains("\"frames_fused\":1"));
        assert!(line.contains("\"frame_subcarriers\":32"));
        assert!(line.contains("\"prep_amortization\":16"));
        assert!(line.contains("p99_frame_latency_us"));
        assert!(line.contains("\"label\":\"exact\",\"served\":7"));
        assert!(line.contains("p99_predict_err_us"));
        assert!(line.contains("\"host_cores\":4"));
        assert!(line.contains("\"n_shards\":2"));
        assert!(line.contains("\"core_budget\":4"));
        assert!(line.contains("\"budget_replans\":3"));
        assert!(line.contains("\"shards\":[{\"routed\":6"));
        assert!(line.contains("\"stolen_in\":1"));
        assert!(line.contains("\"queue_depth\":2"));
    }

    #[test]
    fn render_dispatches_by_format() {
        let snap = sample_snapshot();
        assert_eq!(
            render(&snap, ExportFormat::Prometheus),
            prometheus_text(&snap)
        );
        assert_eq!(render(&snap, ExportFormat::JsonLines), json_line(&snap));
    }

    #[test]
    fn labels_are_escaped() {
        let mut snap = sample_snapshot();
        snap.tiers.push(TierSnapshot {
            label: Arc::from("we\"ird\\tier"),
            served: 1,
            p50_predict_err_us: 0.0,
            p99_predict_err_us: 0.0,
        });
        let line = json_line(&snap);
        validate_json(&line).expect("escaped label must stay parseable");
        assert!(line.contains("we\\\"ird\\\\tier"));
    }

    #[test]
    fn non_finite_rates_degrade_to_zero() {
        let mut snap = sample_snapshot();
        snap.deadline_miss_rate = f64::NAN;
        snap.mean_batch_size = f64::INFINITY;
        validate_json(&json_line(&snap)).expect("NaN/inf must not leak into JSON");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "  {\"a\": [1, 2.5, -3e4, true, false, null, \"s\\n\"]} ",
            "0",
            "-0.5",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "01",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "NaN",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
