//! The runtime: admission control, the worker pool, and the shutdown
//! contract.
//!
//! Lifecycle of a request:
//!
//! 1. [`ServeRuntime::submit`] stamps the admission time and offers the
//!    request to the bounded ingress queue. A full (or closing) queue
//!    returns it immediately as [`Rejected`] — load is shed at the door,
//!    never queued without bound.
//! 2. A worker drains it as part of a batch ([`crate::batcher`]), picks a
//!    ladder rung from the time left until its deadline
//!    ([`crate::ladder`]), decodes into a pooled [`sd_core::Detection`]
//!    slot, and pushes the response.
//! 3. The caller collects the [`DetectionResponse`] and (optionally)
//!    [`ServeRuntime::recycle`]s it, returning the detection buffer to the
//!    pool and regaining ownership of the request.
//!
//! [`ServeRuntime::shutdown`] closes the ingress queue, lets workers drain
//! every admitted request (drain-then-join — nothing admitted is ever
//! dropped), joins them, and returns the final metrics snapshot.

use crate::batcher::BatchPolicy;
use crate::budget::CostModel;
use crate::export::{render, ExportFormat};
use crate::ladder::LadderConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{default_registry, Tier};
use crate::request::{
    DetectionRequest, DetectionResponse, FrameRequest, FrameResponse, RejectReason, Rejected,
    RejectedFrame,
};
use crate::worker::Worker;
use sd_core::Detection;
use sd_wireless::Constellation;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Periodic metrics reporter: every `period`, the runtime renders a fresh
/// [`MetricsSnapshot`] in `format` to stderr from a dedicated thread.
#[derive(Clone, Debug)]
pub struct ReporterConfig {
    /// Interval between reports.
    pub period: Duration,
    /// Rendering used for each report.
    pub format: ExportFormat,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Bounded ingress queue depth (admission control).
    pub queue_capacity: usize,
    /// Batching policy.
    pub batch: BatchPolicy,
    /// Degradation ladder.
    pub ladder: LadderConfig,
    /// Start with the worker gate paused (deterministic tests build a
    /// backlog, then [`ServeRuntime::resume`]).
    pub start_paused: bool,
    /// Optional periodic metrics reporter.
    pub reporter: Option<ReporterConfig>,
    /// Per-worker channel-coherent preparation cache capacity (cached QR
    /// factorizations per worker; see [`crate::prep_cache`]). `0`
    /// disables the cache — every request then pays its own QR.
    pub prep_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_workers: 4,
            queue_capacity: 256,
            batch: BatchPolicy::default(),
            ladder: LadderConfig::default(),
            start_paused: false,
            reporter: None,
            prep_cache: 8,
        }
    }
}

impl ServeConfig {
    /// Builder: worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.n_workers = n;
        self
    }

    /// Builder: ingress queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Builder: batching policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: degradation ladder.
    pub fn with_ladder(mut self, ladder: LadderConfig) -> Self {
        self.ladder = ladder;
        self
    }

    /// Builder: start with workers gated (see [`ServeRuntime::resume`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Builder: report metrics to stderr every `period` in `format`.
    pub fn with_reporter(mut self, period: Duration, format: ExportFormat) -> Self {
        self.reporter = Some(ReporterConfig { period, format });
        self
    }

    /// Builder: per-worker channel-coherent preparation cache capacity
    /// (`0` disables caching).
    pub fn with_prep_cache(mut self, capacity: usize) -> Self {
        self.prep_cache = capacity;
        self
    }
}

/// One unit of admitted work: a single vector or a whole coherence
/// block. A frame is ONE queue item, so its block travels intact through
/// the batcher to one worker — the invariant the shared-prep fast path
/// depends on.
pub(crate) enum Ingress {
    Vector(DetectionRequest),
    Frame(FrameRequest),
}

/// State shared between the runtime handle and its workers.
pub(crate) struct Shared {
    pub(crate) queue: BoundedQueue<Ingress>,
    pub(crate) out: BoundedQueue<DetectionResponse>,
    pub(crate) out_frames: BoundedQueue<FrameResponse>,
    pub(crate) pool: Mutex<Vec<Detection>>,
    pub(crate) frame_pool: Mutex<Vec<Vec<Detection>>>,
    pub(crate) metrics: Metrics,
    pub(crate) model: CostModel,
    pub(crate) config: ServeConfig,
    pub(crate) tiers: Vec<Tier>,
}

/// A running detection service.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    reporter: Option<Reporter>,
}

/// The periodic reporter thread and its stop latch.
struct Reporter {
    handle: JoinHandle<()>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl Reporter {
    fn spawn(shared: Arc<Shared>, config: ReporterConfig) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let latch = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sd-serve-reporter".into())
            .spawn(move || {
                let (lock, cv) = &*latch;
                let mut stopped = lock.lock().unwrap();
                loop {
                    let (g, timeout) = cv.wait_timeout(stopped, config.period).unwrap();
                    stopped = g;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        let snap = shared.metrics.snapshot(shared.queue.len());
                        eprintln!("{}", render(&snap, config.format).trim_end());
                    }
                }
            })
            .expect("spawn reporter");
        Reporter { handle, stop }
    }

    fn stop(self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        self.handle.join().expect("reporter panicked");
    }
}

impl ServeRuntime {
    /// Spawn the worker pool with the stock registry (exact SD → K-best →
    /// MMSE) and start serving.
    pub fn start(config: ServeConfig, constellation: Constellation) -> Self {
        let tiers = default_registry(&constellation, &config.ladder);
        Self::start_with_registry(config, tiers)
    }

    /// Spawn the worker pool over a caller-built tier registry, ordered
    /// most → least accurate. The last tier is the unconditional floor
    /// that serves any request nothing cheaper could.
    pub fn start_with_registry(config: ServeConfig, tiers: Vec<Tier>) -> Self {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert!(!tiers.is_empty(), "registry needs at least one tier");
        config.batch.check();
        let queue = BoundedQueue::new(config.queue_capacity);
        if config.start_paused {
            queue.pause();
        }
        // Responses are bounded by admission control (≤ queue_capacity in
        // flight per uncollected client), not by these queues.
        let out = BoundedQueue::new(usize::MAX);
        let out_frames = BoundedQueue::new(usize::MAX);
        let labels = tiers.iter().map(|t| Arc::clone(&t.label)).collect();
        let shared = Arc::new(Shared {
            queue,
            out,
            out_frames,
            pool: Mutex::new(Vec::new()),
            frame_pool: Mutex::new(Vec::new()),
            metrics: Metrics::new(labels),
            model: CostModel::new(tiers.len()),
            config: config.clone(),
            tiers,
        });
        let workers = (0..config.n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sd-serve-{i}"))
                    .spawn(move || Worker::new(shared).run())
                    .expect("spawn worker")
            })
            .collect();
        let reporter = config
            .reporter
            .map(|rc| Reporter::spawn(Arc::clone(&shared), rc));
        ServeRuntime {
            shared,
            workers,
            reporter,
        }
    }

    /// Offer a request. Returns it as [`Rejected`] when the ingress queue
    /// is full or the runtime is shutting down.
    // The large Err is the contract: shedding hands the request (and its
    // frame buffers) straight back without touching the allocator.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, mut req: DetectionRequest) -> Result<(), Rejected> {
        use std::sync::atomic::Ordering::Relaxed;
        req.enqueued_at = Some(Instant::now());
        match self.shared.queue.try_push(Ingress::Vector(req)) {
            Ok(()) => {
                self.shared.metrics.accepted.fetch_add(1, Relaxed);
                Ok(())
            }
            Err(PushError::Full(Ingress::Vector(request), depth)) => {
                self.shared.metrics.rejected_full.fetch_add(1, Relaxed);
                Err(Rejected {
                    request,
                    reason: RejectReason::QueueFull { depth },
                })
            }
            Err(PushError::Closed(Ingress::Vector(request))) => {
                self.shared.metrics.rejected_shutdown.fetch_add(1, Relaxed);
                Err(Rejected {
                    request,
                    reason: RejectReason::ShuttingDown,
                })
            }
            Err(PushError::Full(Ingress::Frame(_), _) | PushError::Closed(Ingress::Frame(_))) => {
                unreachable!("push returns the item it was offered")
            }
        }
    }

    /// Offer a whole coherence block as one unit. The frame is never
    /// split: it travels through the queue and batcher as a single item
    /// and is decoded by one worker with one shared channel preparation.
    /// Returns it as [`RejectedFrame`] when the ingress queue is full or
    /// the runtime is shutting down.
    ///
    /// Its subcarriers also count into the vector-level `accepted` /
    /// `rejected_*` counters, so `accepted == served` stays closed over
    /// mixed vector/frame traffic.
    #[allow(clippy::result_large_err)]
    pub fn submit_frame(&self, mut req: FrameRequest) -> Result<(), RejectedFrame> {
        use std::sync::atomic::Ordering::Relaxed;
        req.enqueued_at = Some(Instant::now());
        let b = req.block_len() as u64;
        let m = &self.shared.metrics;
        match self.shared.queue.try_push(Ingress::Frame(req)) {
            Ok(()) => {
                m.frames_accepted.fetch_add(1, Relaxed);
                m.accepted.fetch_add(b, Relaxed);
                Ok(())
            }
            Err(PushError::Full(Ingress::Frame(request), depth)) => {
                m.frames_rejected_full.fetch_add(1, Relaxed);
                m.rejected_full.fetch_add(b, Relaxed);
                Err(RejectedFrame {
                    request,
                    reason: RejectReason::QueueFull { depth },
                })
            }
            Err(PushError::Closed(Ingress::Frame(request))) => {
                m.frames_rejected_shutdown.fetch_add(1, Relaxed);
                m.rejected_shutdown.fetch_add(b, Relaxed);
                Err(RejectedFrame {
                    request,
                    reason: RejectReason::ShuttingDown,
                })
            }
            Err(PushError::Full(Ingress::Vector(_), _) | PushError::Closed(Ingress::Vector(_))) => {
                unreachable!("push returns the item it was offered")
            }
        }
    }

    /// Collect one response without blocking.
    pub fn try_collect(&self) -> Option<DetectionResponse> {
        self.shared.out.try_pop()
    }

    /// Collect one response, waiting up to `timeout`.
    pub fn collect_timeout(&self, timeout: Duration) -> Option<DetectionResponse> {
        self.shared.out.pop_timeout(timeout)
    }

    /// Collect one frame response without blocking.
    pub fn try_collect_frame(&self) -> Option<FrameResponse> {
        self.shared.out_frames.try_pop()
    }

    /// Collect one frame response, waiting up to `timeout`.
    pub fn collect_frame_timeout(&self, timeout: Duration) -> Option<FrameResponse> {
        self.shared.out_frames.pop_timeout(timeout)
    }

    /// Return a response's detection buffer to the pool and hand the
    /// request (with its frame) back to the caller for reuse.
    pub fn recycle(&self, resp: DetectionResponse) -> DetectionRequest {
        self.shared.pool.lock().unwrap().push(resp.detection);
        resp.request
    }

    /// Return a frame response's detection block to the frame pool and
    /// hand the request (with its subcarrier buffers) back for reuse.
    pub fn recycle_frame(&self, resp: FrameResponse) -> FrameRequest {
        self.shared.frame_pool.lock().unwrap().push(resp.detections);
        resp.request
    }

    /// Gate the workers (requests keep queuing up to capacity).
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Release the worker gate.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Current ingress backlog.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Snapshot the runtime metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.queue_depth())
    }

    /// Read-only view of the cost model (for reports).
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.model
    }

    /// Labels of the registry tiers, in ladder order (index = tier id).
    pub fn tier_labels(&self) -> Vec<Arc<str>> {
        self.shared
            .tiers
            .iter()
            .map(|t| Arc::clone(&t.label))
            .collect()
    }

    /// Stop accepting work, drain every admitted request, join the
    /// workers, and return the final metrics together with any vector and
    /// frame responses the caller had not yet collected — nothing
    /// admitted is dropped.
    pub fn shutdown(mut self) -> (MetricsSnapshot, Vec<DetectionResponse>, Vec<FrameResponse>) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        if let Some(reporter) = self.reporter.take() {
            reporter.stop();
        }
        // Everything admitted has now been served; scoop up any responses
        // the caller has not collected so nothing is silently dropped.
        let mut leftover = Vec::new();
        while let Some(r) = self.shared.out.try_pop() {
            leftover.push(r);
        }
        let mut leftover_frames = Vec::new();
        while let Some(r) = self.shared.out_frames.try_pop() {
            leftover_frames.push(r);
        }
        (self.shared.metrics.snapshot(0), leftover, leftover_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn request(id: u64, rng: &mut StdRng, c: &Constellation) -> DetectionRequest {
        let snr = 12.0;
        let f = FrameData::generate(4, 4, c, noise_variance(snr, 4), rng);
        DetectionRequest::new(id, f, snr, Duration::from_millis(10))
    }

    #[test]
    fn serves_and_shuts_down() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(7);
        for id in 0..20 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        let mut got = 0;
        while got < 20 {
            if rt.collect_timeout(Duration::from_secs(5)).is_some() {
                got += 1;
            } else {
                panic!("runtime stalled");
            }
        }
        let (snap, leftover, _) = rt.shutdown();
        assert!(leftover.is_empty());
        assert_eq!(snap.accepted, 20);
        assert_eq!(snap.served, 20);
        assert_eq!(snap.rejected_full + snap.rejected_shutdown, 0);
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1).paused(), c.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for id in 0..5 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        // Workers are gated; shutdown must still serve all 5.
        let (snap, leftover, _) = rt.shutdown();
        assert_eq!(snap.served, 5, "drain-then-join");
        assert_eq!(leftover.len(), 5, "uncollected responses handed back");
    }

    #[test]
    fn snapshot_never_reports_missed_above_served() {
        // Zero deadlines make every served request a miss; concurrent
        // snapshots taken mid-batch must still satisfy missed ≤ served
        // (the old per-batch `served` bump could report miss rates > 1).
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let mut submitted = 0u64;
        for id in 0..200 {
            let snr = 12.0;
            let f = FrameData::generate(4, 4, &c, noise_variance(snr, 4), &mut rng);
            if rt
                .submit(DetectionRequest::new(id, f, snr, Duration::ZERO))
                .is_ok()
            {
                submitted += 1;
            }
            let snap = rt.metrics();
            assert!(
                snap.deadline_missed <= snap.served,
                "missed {} > served {}",
                snap.deadline_missed,
                snap.served
            );
            assert!(snap.deadline_miss_rate <= 1.0);
        }
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.served, submitted);
        assert_eq!(snap.deadline_missed, submitted, "zero deadline misses all");
        assert!((snap.deadline_miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reporter_thread_reports_and_stops() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(1)
                .with_reporter(Duration::from_millis(5), ExportFormat::JsonLines),
            c.clone(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        for id in 0..8 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        // Let at least one reporting period elapse with the runtime live.
        std::thread::sleep(Duration::from_millis(25));
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.served, 8, "reporter must not disturb serving");
    }

    fn frame_request(id: u64, block: usize, rng: &mut StdRng, c: &Constellation) -> FrameRequest {
        let snr = 12.0;
        let sigma2 = noise_variance(snr, 4);
        let base = FrameData::generate(4, 4, c, sigma2, rng);
        let subcarriers = (0..block)
            .map(|_| {
                let mut f = base.clone();
                let fresh = FrameData::generate(4, 4, c, sigma2, rng);
                f.y = fresh.y;
                f.tx = fresh.tx;
                f
            })
            .collect();
        FrameRequest::new(id, subcarriers, snr, Duration::from_millis(50))
    }

    #[test]
    fn frames_round_trip_with_subcarrier_accounting() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(21);
        for id in 0..4 {
            rt.submit_frame(frame_request(id, 8, &mut rng, &c)).unwrap();
        }
        // Mixed traffic: a couple of plain vectors ride along.
        for id in 100..102 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        let mut frames = Vec::new();
        while frames.len() < 4 {
            match rt.collect_frame_timeout(Duration::from_secs(5)) {
                Some(f) => frames.push(f),
                None => panic!("frame path stalled"),
            }
        }
        for f in &frames {
            assert_eq!(f.detections.len(), 8, "one detection per subcarrier");
            assert_eq!(f.prep_factors, 1, "shared-prep path on the stock registry");
        }
        for f in frames {
            rt.recycle_frame(f);
        }
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.frames_accepted, 4);
        assert_eq!(snap.frames_served, 4);
        assert_eq!(snap.frame_subcarriers, 32);
        assert_eq!(snap.frame_prep_factors, 4);
        assert!((snap.prep_amortization - 8.0).abs() < 1e-12);
        // Vector-level counters stay closed over the mixture.
        assert_eq!(snap.accepted, 32 + 2);
        assert_eq!(snap.served, 32 + 2);
        assert_eq!(
            snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
            snap.served
        );
    }

    #[test]
    fn shutdown_hands_back_uncollected_frames() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(22);
        for id in 0..3 {
            rt.submit_frame(frame_request(id, 4, &mut rng, &c)).unwrap();
        }
        let (snap, _, leftover_frames) = rt.shutdown();
        assert_eq!(snap.frames_served, 3, "drain-then-join covers frames");
        assert_eq!(leftover_frames.len(), 3, "uncollected frames handed back");
    }

    #[test]
    fn recycle_frame_returns_block_ownership() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(23);
        rt.submit_frame(frame_request(7, 5, &mut rng, &c)).unwrap();
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(5))
            .expect("served");
        assert_eq!(resp.request.id, 7);
        let req = rt.recycle_frame(resp);
        assert_eq!(req.block_len(), 5);
        rt.submit_frame(req).unwrap();
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(5))
            .expect("served again");
        assert_eq!(resp.request.id, 7);
        rt.shutdown();
    }

    #[test]
    fn recycle_returns_request_ownership() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(9);
        rt.submit(request(42, &mut rng, &c)).unwrap();
        let resp = rt.collect_timeout(Duration::from_secs(5)).expect("served");
        assert_eq!(resp.request.id, 42);
        let req = rt.recycle(resp);
        assert_eq!(req.id, 42);
        rt.submit(req).unwrap();
        let resp = rt.collect_timeout(Duration::from_secs(5)).expect("served");
        assert_eq!(resp.request.id, 42);
        rt.shutdown();
    }
}
