//! The runtime: admission control, the sharded worker pool, and the
//! shutdown contract.
//!
//! The runtime is **sharded**: `n_shards` shards each own a bounded
//! ingress queue, a slice of the worker pool, a channel-coherent
//! [`PrepCache`], and their own [`CostModel`]. Admission routes every
//! request by a hash of its channel matrix (`route_hash(H) % n_shards`),
//! so coherent traffic — requests repeating one `H`, per-vector and
//! [`FrameRequest`] alike — concentrates on one shard and its cache.
//! When a shard's queue runs dry its workers steal whole queue items
//! (never splitting a frame) from other shards, bounded to half the
//! victim's backlog, so load imbalance costs latency, not idle cores.
//!
//! Lifecycle of a request:
//!
//! 1. [`ServeRuntime::submit`] stamps the admission time and offers the
//!    request to its affinity shard's bounded queue. A full (or closing)
//!    queue returns it immediately as [`Rejected`] — load is shed at the
//!    door, never queued without bound.
//! 2. A shard worker drains it as part of a batch ([`crate::batcher`]),
//!    picks a ladder rung from the time left until its deadline
//!    ([`crate::ladder`]), decodes into a pooled [`sd_core::Detection`]
//!    slot, and pushes the response.
//! 3. The caller collects the [`DetectionResponse`] and (optionally)
//!    [`ServeRuntime::recycle`]s it, returning the detection buffer to the
//!    pool and regaining ownership of the request.
//!
//! On top of the shards, an optional **adaptive core budget**
//! ([`ServeConfig::with_core_budget`]) re-plans how the physical core
//! allowance is split between request-level workers and the
//! subtree-parallel exact decoder's broadcast pool: low load favors a
//! wide [`sd_core::ParallelSphereDecoder`] (latency), high load narrows
//! it so the cores serve independent requests (throughput).
//!
//! [`ServeRuntime::shutdown`] closes every ingress queue, lets workers
//! drain every admitted request (drain-then-join — nothing admitted is
//! ever dropped), joins them, and returns the final metrics snapshot.

use crate::batcher::BatchPolicy;
use crate::budget::{CoreBudgetPolicy, CostModel};
use crate::export::{render, ExportFormat};
use crate::ladder::{choose_tier_block_budgeted, LadderConfig};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::prep_cache::{route_hash, PrepCache};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{default_registry, Tier};
use crate::request::{
    DetectionRequest, DetectionResponse, FrameRequest, FrameResponse, RejectReason, Rejected,
    RejectedFrame,
};
use crate::worker::Worker;
use sd_core::{Detection, WorkerBudget};
use sd_wireless::Constellation;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Logical cores the host reports (1 when the host cannot say).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default worker/core allowance: [`host_cores`] clamped to `[1, 16]`.
/// The clamp keeps a default runtime from spawning an absurd pool on a
/// many-core box; the old hardcoded 4 oversubscribed small hosts (the
/// PR 5 bench showed 4/8 workers *slower* than 2 on few cores).
/// Override explicitly via [`ServeConfig::with_workers`].
pub fn default_core_allowance() -> usize {
    host_cores().clamp(1, 16)
}

/// Periodic metrics reporter: every `period`, the runtime renders a fresh
/// [`MetricsSnapshot`] in `format` to stderr from a dedicated thread.
#[derive(Clone, Debug)]
pub struct ReporterConfig {
    /// Interval between reports.
    pub period: Duration,
    /// Rendering used for each report.
    pub format: ExportFormat,
}

/// Adaptive core-budget controller configuration: the shared
/// [`WorkerBudget`] handle the subtree-parallel decoder samples, plus the
/// [`CoreBudgetPolicy`] that re-plans it. Build the registry's exact tier
/// with [`sd_core::ParallelSphereDecoder::with_worker_budget`] on a clone
/// of the same handle to close the loop.
#[derive(Clone, Debug)]
pub struct CoreBudgetConfig {
    /// Lane allowance shared with the decoder(s) under control.
    pub handle: Arc<WorkerBudget>,
    /// Watermarks, cadence, and core allowance.
    pub policy: CoreBudgetPolicy,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads, dealt round-robin across the shards (defaults to
    /// [`default_core_allowance`]).
    pub n_workers: usize,
    /// Shards (`1` = the classic single-queue runtime; `0` = one shard
    /// per worker). Clamped to `n_workers` so every shard has a worker.
    pub n_shards: usize,
    /// Allow idle shard workers to steal queued items from other shards.
    pub steal: bool,
    /// Total bounded ingress depth (admission control), split evenly
    /// across the shard queues (each gets at least 1 slot).
    pub queue_capacity: usize,
    /// Batching policy.
    pub batch: BatchPolicy,
    /// Degradation ladder.
    pub ladder: LadderConfig,
    /// Start with the worker gate paused (deterministic tests build a
    /// backlog, then [`ServeRuntime::resume`]).
    pub start_paused: bool,
    /// Optional periodic metrics reporter.
    pub reporter: Option<ReporterConfig>,
    /// Optional adaptive core-budget controller.
    pub core_budget: Option<CoreBudgetConfig>,
    /// Per-shard channel-coherent preparation cache capacity (cached QR
    /// factorizations per shard; see [`crate::prep_cache`]). `0` disables
    /// the cache — every request then pays its own QR.
    pub prep_cache: usize,
    /// Predictive admission control: refuse a request at [`ServeRuntime::submit`]
    /// when its target shard's queued cost — every queued item stamped at
    /// admission with the shard model's *per-tier* service-time prediction
    /// for the rung the ladder would run it on — is already predicted to
    /// outlast the request's whole deadline
    /// ([`crate::RejectReason::PredictedLate`]). Pricing each item by its
    /// own tier (rather than a tier-blind mean) keeps a backlog of cheap
    /// floor-tier work from shedding requests it could easily absorb.
    /// A doomed request admitted anyway is a guaranteed deadline miss
    /// *and* steals service time from the requests queued behind it; the
    /// gate converts it into an explicit, immediate shed the caller can
    /// retry elsewhere. Off by default (the reactive control arm); a cold
    /// model admits everything until it has drain-rate evidence.
    pub predictive_admission: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_workers: default_core_allowance(),
            n_shards: 1,
            steal: true,
            queue_capacity: 256,
            batch: BatchPolicy::default(),
            ladder: LadderConfig::default(),
            start_paused: false,
            reporter: None,
            core_budget: None,
            prep_cache: 8,
            predictive_admission: false,
        }
    }
}

impl ServeConfig {
    /// Builder: worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.n_workers = n;
        self
    }

    /// Builder: shard count (`0` = one shard per worker).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.n_shards = n;
        self
    }

    /// Builder: enable/disable work stealing between shards.
    pub fn with_stealing(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Builder: total ingress queue capacity (split across shards).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Builder: batching policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: degradation ladder.
    pub fn with_ladder(mut self, ladder: LadderConfig) -> Self {
        self.ladder = ladder;
        self
    }

    /// Builder: start with workers gated (see [`ServeRuntime::resume`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Builder: report metrics to stderr every `period` in `format`.
    pub fn with_reporter(mut self, period: Duration, format: ExportFormat) -> Self {
        self.reporter = Some(ReporterConfig { period, format });
        self
    }

    /// Builder: attach the adaptive core-budget controller. `handle` is
    /// the [`WorkerBudget`] the registry's subtree-parallel decoder was
    /// built with; the controller re-plans it per `policy`.
    pub fn with_core_budget(mut self, handle: Arc<WorkerBudget>, policy: CoreBudgetPolicy) -> Self {
        self.core_budget = Some(CoreBudgetConfig { handle, policy });
        self
    }

    /// Builder: per-shard channel-coherent preparation cache capacity
    /// (`0` disables caching).
    pub fn with_prep_cache(mut self, capacity: usize) -> Self {
        self.prep_cache = capacity;
        self
    }

    /// Builder: enable/disable predictive admission control (see
    /// [`ServeConfig::predictive_admission`]).
    pub fn with_predictive_admission(mut self, on: bool) -> Self {
        self.predictive_admission = on;
        self
    }
}

/// One unit of admitted work: a single vector or a whole coherence
/// block. A frame is ONE queue item, so its block travels intact through
/// the batcher — and through any steal — to one worker: the invariant
/// the shared-prep fast path depends on.
pub(crate) enum Ingress {
    Vector(DetectionRequest),
    Frame(FrameRequest),
}

impl Ingress {
    /// Accounting weight: subcarriers for a frame, 1 for a vector.
    pub(crate) fn weight(&self) -> u64 {
        match self {
            Ingress::Vector(_) => 1,
            Ingress::Frame(f) => f.block_len() as u64,
        }
    }

    /// Admission-time predicted service cost (ns) stamped at submit — the
    /// amount the draining worker removes from the owning shard's
    /// [`Shard::queued_cost_ns`] gauge.
    pub(crate) fn cost_ns(&self) -> u64 {
        match self {
            Ingress::Vector(r) => r.admitted_cost_ns,
            Ingress::Frame(f) => f.admitted_cost_ns,
        }
    }
}

/// One shard: its bounded ingress queue plus the per-shard serving state
/// its workers share. Affinity routing keeps one channel's traffic on one
/// shard, so its cache and cost model see a coherent stream.
pub(crate) struct Shard {
    pub(crate) queue: BoundedQueue<Ingress>,
    /// This shard's cost model — fed only by decodes its workers ran, so
    /// shard-local traffic shape drives shard-local ladder decisions.
    pub(crate) model: CostModel,
    /// This shard's channel-coherent factorization cache.
    pub(crate) prep_cache: Mutex<PrepCache>,
    /// Predicted-cost backlog gauge in nanoseconds: the sum of the
    /// admission-time cost stamps ([`Ingress::cost_ns`]) of everything
    /// still queued here — the predictive-admission wait estimate's
    /// numerator. Each stamp prices the *specific* item from the shard
    /// model's per-tier cost curves (the rung the ladder would pick with
    /// the whole deadline ahead), so a backlog of floor-tier microseconds
    /// no longer reads as expensive just because exact-tier milliseconds
    /// share the same queue. Incremented *before* the enqueue attempt and
    /// rolled back on refusal, decremented by whichever worker actually
    /// drains the item (own pop or steal), so at every instant the gauge
    /// is ≥ the stamped cost still queued here and a racing reader can
    /// only be conservative, never negative.
    pub(crate) queued_cost_ns: AtomicU64,
    /// Workers dealt to this shard (round-robin `i % n_shards`) — the
    /// wait estimate's drain-parallelism denominator.
    pub(crate) n_workers: usize,
}

/// State shared between the runtime handle and its workers.
pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    pub(crate) out: BoundedQueue<DetectionResponse>,
    pub(crate) out_frames: BoundedQueue<FrameResponse>,
    pub(crate) pool: Mutex<Vec<Detection>>,
    pub(crate) frame_pool: Mutex<Vec<Vec<Detection>>>,
    pub(crate) metrics: Metrics,
    pub(crate) config: ServeConfig,
    pub(crate) tiers: Vec<Tier>,
}

impl Shared {
    /// Depth of every shard queue, in shard order.
    fn shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue.len()).collect()
    }

    /// Total ingress backlog.
    fn total_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }
}

/// A running detection service.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    reporter: Option<Reporter>,
    controller: Option<Controller>,
}

/// The periodic reporter thread and its stop latch.
struct Reporter {
    handle: JoinHandle<()>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl Reporter {
    fn spawn(shared: Arc<Shared>, config: ReporterConfig) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let latch = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sd-serve-reporter".into())
            .spawn(move || {
                let (lock, cv) = &*latch;
                let mut stopped = lock.lock().unwrap();
                loop {
                    let (g, timeout) = cv.wait_timeout(stopped, config.period).unwrap();
                    stopped = g;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        let snap = shared.metrics.snapshot(&shared.shard_depths());
                        eprintln!("{}", render(&snap, config.format).trim_end());
                    }
                }
            })
            .expect("spawn reporter");
        Reporter { handle, stop }
    }

    fn stop(self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        self.handle.join().expect("reporter panicked");
    }
}

/// The adaptive core-budget controller thread and its stop latch.
///
/// Every `period` it folds the summed shard backlog into an EWMA,
/// normalizes by the worker count ("queued items per worker"), and picks
/// a plan: backlog at or above the high watermark narrows the
/// subtree-parallel decoder to `max(1, cores / n_workers)` lanes so the
/// cores serve independent requests (throughput); backlog at or below the
/// low watermark hands the whole allowance back to the decoder (latency).
/// Between the watermarks the current plan holds — hysteresis, so a load
/// hovering near one threshold cannot flap the pool.
struct Controller {
    handle: JoinHandle<()>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl Controller {
    fn spawn(shared: Arc<Shared>, cfg: CoreBudgetConfig) -> Self {
        use std::sync::atomic::Ordering::Relaxed;
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let latch = Arc::clone(&stop);
        // Start on the latency plan: an idle runtime wants the widest
        // decoder. Recorded immediately so snapshots never read 0 while a
        // controller is attached.
        cfg.handle.set(cfg.policy.cores.max(1));
        shared
            .metrics
            .core_budget
            .store(cfg.handle.get() as u64, Relaxed);
        let handle = std::thread::Builder::new()
            .name("sd-serve-budget".into())
            .spawn(move || {
                let (lock, cv) = &*latch;
                let n_workers = shared.config.n_workers.max(1);
                let latency_plan = cfg.policy.cores.max(1);
                let throughput_plan = (cfg.policy.cores / n_workers).max(1);
                let mut current = latency_plan;
                let mut ewma = 0.0f64;
                let mut stopped = lock.lock().unwrap();
                loop {
                    let (g, timeout) = cv.wait_timeout(stopped, cfg.policy.period).unwrap();
                    stopped = g;
                    if *stopped {
                        return;
                    }
                    if !timeout.timed_out() {
                        continue;
                    }
                    let depth = shared.total_depth();
                    ewma += cfg.policy.alpha * (depth as f64 - ewma);
                    let load = ewma / n_workers as f64;
                    let target = if load >= cfg.policy.high_watermark {
                        throughput_plan
                    } else if load <= cfg.policy.low_watermark {
                        latency_plan
                    } else {
                        current // dead band: hold the plan
                    };
                    if target != current {
                        current = target;
                        cfg.handle.set(current);
                        shared.metrics.budget_replans.fetch_add(1, Relaxed);
                    }
                    shared.metrics.core_budget.store(current as u64, Relaxed);
                }
            })
            .expect("spawn budget controller");
        Controller { handle, stop }
    }

    fn stop(self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        self.handle.join().expect("budget controller panicked");
    }
}

/// Split a total ingress capacity across `n` shard queues: earlier shards
/// absorb the remainder; every shard gets at least one slot (a total
/// below the shard count rounds up — admission stays bounded per shard).
fn split_capacity(total: usize, n: usize) -> Vec<usize> {
    let base = total / n;
    let rem = total % n;
    (0..n)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

impl ServeRuntime {
    /// Spawn the worker pool with the stock registry (exact SD → K-best →
    /// MMSE) and start serving.
    pub fn start(config: ServeConfig, constellation: Constellation) -> Self {
        let tiers = default_registry(&constellation, &config.ladder);
        Self::start_with_registry(config, tiers)
    }

    /// Spawn the worker pool over a caller-built tier registry, ordered
    /// most → least accurate. The last tier is the unconditional floor
    /// that serves any request nothing cheaper could.
    pub fn start_with_registry(mut config: ServeConfig, tiers: Vec<Tier>) -> Self {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert!(!tiers.is_empty(), "registry needs at least one tier");
        config.batch.check();
        // Resolve the shard count (0 = one per worker) and pin it in the
        // stored config so workers and snapshots agree on the topology.
        let n_shards = if config.n_shards == 0 {
            config.n_workers
        } else {
            config.n_shards
        }
        .clamp(1, config.n_workers);
        config.n_shards = n_shards;
        let shards: Vec<Shard> = split_capacity(config.queue_capacity, n_shards)
            .into_iter()
            .enumerate()
            .map(|(j, cap)| {
                let queue = BoundedQueue::new(cap);
                if config.start_paused {
                    queue.pause();
                }
                Shard {
                    queue,
                    model: CostModel::new(tiers.len()),
                    prep_cache: Mutex::new(PrepCache::new(config.prep_cache)),
                    queued_cost_ns: AtomicU64::new(0),
                    // The round-robin deal gives shard j one worker per
                    // full lap plus one more when j is inside the remainder.
                    n_workers: config.n_workers / n_shards
                        + usize::from(j < config.n_workers % n_shards),
                }
            })
            .collect();
        // Responses are bounded by admission control (≤ queue_capacity in
        // flight per uncollected client), not by these queues.
        let out = BoundedQueue::new(usize::MAX);
        let out_frames = BoundedQueue::new(usize::MAX);
        let labels = tiers.iter().map(|t| Arc::clone(&t.label)).collect();
        let core_budget = config.core_budget.clone();
        let shared = Arc::new(Shared {
            shards,
            out,
            out_frames,
            pool: Mutex::new(Vec::new()),
            frame_pool: Mutex::new(Vec::new()),
            metrics: Metrics::new(labels, n_shards, host_cores()),
            config: config.clone(),
            tiers,
        });
        let workers = (0..config.n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Round-robin deal: worker i serves shard i % n_shards, so
                // every shard owns ⌈workers/shards⌉ or ⌊workers/shards⌋.
                let shard_idx = i % n_shards;
                std::thread::Builder::new()
                    .name(format!("sd-serve-{i}"))
                    .spawn(move || Worker::new(shared, shard_idx).run())
                    .expect("spawn worker")
            })
            .collect();
        let reporter = config
            .reporter
            .map(|rc| Reporter::spawn(Arc::clone(&shared), rc));
        let controller = core_budget.map(|cb| Controller::spawn(Arc::clone(&shared), cb));
        ServeRuntime {
            shared,
            workers,
            reporter,
            controller,
        }
    }

    /// The shard affinity routing assigns to channel matrix `h`.
    fn shard_for(&self, h: &sd_math::Matrix<f64>) -> usize {
        (route_hash(h) % self.shared.shards.len() as u64) as usize
    }

    /// Offer a request. Returns it as [`Rejected`] when its affinity
    /// shard's queue is full or the runtime is shutting down (the depth
    /// in the rejection is that shard's, not the global backlog).
    // The large Err is the contract: shedding hands the request (and its
    // frame buffers) straight back without touching the allocator.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, mut req: DetectionRequest) -> Result<(), Rejected> {
        use std::sync::atomic::Ordering::Relaxed;
        req.enqueued_at = Some(Instant::now());
        let idx = self.shard_for(&req.frame.h);
        let m = &self.shared.metrics;
        let shard = &self.shared.shards[idx];
        if let Some(predicted_wait) = self.predicted_late(shard, req.deadline) {
            m.rejected_predicted.fetch_add(1, Relaxed);
            return Err(Rejected {
                request: req,
                reason: RejectReason::PredictedLate { predicted_wait },
            });
        }
        req.admitted_cost_ns =
            self.admission_cost_ns(shard, req.snr_db, req.frame.h.cols(), req.deadline, 1);
        let cost = req.admitted_cost_ns;
        shard.queued_cost_ns.fetch_add(cost, Relaxed);
        match shard.queue.try_push(Ingress::Vector(req)) {
            Ok(()) => {
                m.accepted.fetch_add(1, Relaxed);
                m.shards[idx].routed.fetch_add(1, Relaxed);
                Ok(())
            }
            Err(PushError::Full(Ingress::Vector(request), depth)) => {
                shard.queued_cost_ns.fetch_sub(cost, Relaxed);
                m.rejected_full.fetch_add(1, Relaxed);
                Err(Rejected {
                    request,
                    reason: RejectReason::QueueFull { depth },
                })
            }
            Err(PushError::Closed(Ingress::Vector(request))) => {
                shard.queued_cost_ns.fetch_sub(cost, Relaxed);
                m.rejected_shutdown.fetch_add(1, Relaxed);
                Err(Rejected {
                    request,
                    reason: RejectReason::ShuttingDown,
                })
            }
            Err(PushError::Full(Ingress::Frame(_), _) | PushError::Closed(Ingress::Frame(_))) => {
                unreachable!("push returns the item it was offered")
            }
        }
    }

    /// The predictive-admission check: `Some(predicted_wait)` when the
    /// gate is on and `shard`'s queued-cost gauge — the sum of the
    /// *per-tier* cost stamps of everything still queued there, drained by
    /// its workers — is predicted to outlast `deadline`: the offered item
    /// would be a guaranteed miss before any of its *own* work even
    /// starts. Because every stamp prices its item from the tier the
    /// ladder would actually run (not a tier-blind mean), a backlog of
    /// cheap floor-tier items no longer sheds requests that an exact-tier
    /// backlog of the same length would.
    fn predicted_late(&self, shard: &Shard, deadline: Duration) -> Option<Duration> {
        use std::sync::atomic::Ordering::Relaxed;
        if !self.shared.config.predictive_admission {
            return None;
        }
        let backlog_ns = shard.queued_cost_ns.load(Relaxed) as f64;
        let wait_ns = backlog_ns / shard.n_workers.max(1) as f64;
        (wait_ns > deadline.as_nanos() as f64)
            .then(|| Duration::from_nanos(wait_ns.min(u64::MAX as f64) as u64))
    }

    /// Price an offered item for the queued-cost gauge: the service time
    /// the shard's cost model predicts for the tier the ladder would pick
    /// with the whole deadline still ahead, times the block size. Runs the
    /// same `choose_tier_block_budgeted` walk the worker will (condition
    /// gating skipped — the condition number is not known until prep), so
    /// the stamp tracks what the item will actually cost rather than a
    /// tier-blind mean. Returns 0 when predictive admission is off: the
    /// gauge then has no reader and the submit path stays stamp-free.
    fn admission_cost_ns(
        &self,
        shard: &Shard,
        snr_db: f64,
        m: usize,
        deadline: Duration,
        block: usize,
    ) -> u64 {
        if !self.shared.config.predictive_admission {
            return 0;
        }
        let tiers = &self.shared.tiers;
        let p = tiers[0].detector.constellation().order();
        let d = choose_tier_block_budgeted(
            &self.shared.config.ladder,
            &shard.model,
            tiers,
            snr_db,
            None,
            m,
            p,
            deadline,
            block,
        );
        let per_vector =
            shard
                .model
                .predict_ns_with(d.tier, &tiers[d.tier].cost, snr_db, None, m, p);
        (per_vector * block as f64).min(u64::MAX as f64) as u64
    }

    /// Offer a whole coherence block as one unit. The frame is never
    /// split: it travels through its affinity shard's queue (routed by the
    /// block's shared `H`, like the vectors repeating that `H`) and the
    /// batcher as a single item and is decoded by one worker with one
    /// shared channel preparation. Returns it as [`RejectedFrame`] when
    /// the shard's queue is full or the runtime is shutting down.
    ///
    /// Its subcarriers also count into the vector-level `accepted` /
    /// `rejected_*` counters, so `accepted == served` stays closed over
    /// mixed vector/frame traffic.
    #[allow(clippy::result_large_err)]
    pub fn submit_frame(&self, mut req: FrameRequest) -> Result<(), RejectedFrame> {
        use std::sync::atomic::Ordering::Relaxed;
        req.enqueued_at = Some(Instant::now());
        let b = req.block_len() as u64;
        let idx = self.shard_for(&req.subcarriers[0].h);
        let m = &self.shared.metrics;
        let shard = &self.shared.shards[idx];
        if let Some(predicted_wait) = self.predicted_late(shard, req.deadline) {
            m.frames_rejected_predicted.fetch_add(1, Relaxed);
            m.rejected_predicted.fetch_add(b, Relaxed);
            return Err(RejectedFrame {
                request: req,
                reason: RejectReason::PredictedLate { predicted_wait },
            });
        }
        req.admitted_cost_ns = self.admission_cost_ns(
            shard,
            req.snr_db,
            req.subcarriers[0].h.cols(),
            req.deadline,
            req.block_len(),
        );
        let cost = req.admitted_cost_ns;
        shard.queued_cost_ns.fetch_add(cost, Relaxed);
        match shard.queue.try_push(Ingress::Frame(req)) {
            Ok(()) => {
                m.frames_accepted.fetch_add(1, Relaxed);
                m.accepted.fetch_add(b, Relaxed);
                m.shards[idx].routed.fetch_add(b, Relaxed);
                Ok(())
            }
            Err(PushError::Full(Ingress::Frame(request), depth)) => {
                shard.queued_cost_ns.fetch_sub(cost, Relaxed);
                m.frames_rejected_full.fetch_add(1, Relaxed);
                m.rejected_full.fetch_add(b, Relaxed);
                Err(RejectedFrame {
                    request,
                    reason: RejectReason::QueueFull { depth },
                })
            }
            Err(PushError::Closed(Ingress::Frame(request))) => {
                shard.queued_cost_ns.fetch_sub(cost, Relaxed);
                m.frames_rejected_shutdown.fetch_add(1, Relaxed);
                m.rejected_shutdown.fetch_add(b, Relaxed);
                Err(RejectedFrame {
                    request,
                    reason: RejectReason::ShuttingDown,
                })
            }
            Err(PushError::Full(Ingress::Vector(_), _) | PushError::Closed(Ingress::Vector(_))) => {
                unreachable!("push returns the item it was offered")
            }
        }
    }

    /// Collect one response without blocking.
    pub fn try_collect(&self) -> Option<DetectionResponse> {
        self.shared.out.try_pop()
    }

    /// Collect one response, waiting up to `timeout`.
    pub fn collect_timeout(&self, timeout: Duration) -> Option<DetectionResponse> {
        self.shared.out.pop_timeout(timeout)
    }

    /// Collect one frame response without blocking.
    pub fn try_collect_frame(&self) -> Option<FrameResponse> {
        self.shared.out_frames.try_pop()
    }

    /// Collect one frame response, waiting up to `timeout`.
    pub fn collect_frame_timeout(&self, timeout: Duration) -> Option<FrameResponse> {
        self.shared.out_frames.pop_timeout(timeout)
    }

    /// Return a response's detection buffer to the pool and hand the
    /// request (with its frame) back to the caller for reuse.
    pub fn recycle(&self, resp: DetectionResponse) -> DetectionRequest {
        self.shared.pool.lock().unwrap().push(resp.detection);
        resp.request
    }

    /// Return a frame response's detection block to the frame pool and
    /// hand the request (with its subcarrier buffers) back for reuse.
    pub fn recycle_frame(&self, resp: FrameResponse) -> FrameRequest {
        self.shared.frame_pool.lock().unwrap().push(resp.detections);
        resp.request
    }

    /// Gate the workers on every shard (requests keep queuing up to each
    /// shard's capacity). Stealing is gated too — a paused queue yields
    /// no loot.
    pub fn pause(&self) {
        for s in &self.shared.shards {
            s.queue.pause();
        }
    }

    /// Release the worker gates.
    pub fn resume(&self) {
        for s in &self.shared.shards {
            s.queue.resume();
        }
    }

    /// Current total ingress backlog (summed over shards).
    pub fn queue_depth(&self) -> usize {
        self.shared.total_depth()
    }

    /// Number of shards the runtime resolved at startup.
    pub fn n_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Snapshot the runtime metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(&self.shared.shard_depths())
    }

    /// Read-only view of shard 0's cost model (for reports; each shard
    /// learns its own model from the decodes it served).
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.shards[0].model
    }

    /// Labels of the registry tiers, in ladder order (index = tier id).
    pub fn tier_labels(&self) -> Vec<Arc<str>> {
        self.shared
            .tiers
            .iter()
            .map(|t| Arc::clone(&t.label))
            .collect()
    }

    /// Stop accepting work, drain every admitted request, join the
    /// workers, and return the final metrics together with any vector and
    /// frame responses the caller had not yet collected — nothing
    /// admitted is dropped.
    pub fn shutdown(mut self) -> (MetricsSnapshot, Vec<DetectionResponse>, Vec<FrameResponse>) {
        for s in &self.shared.shards {
            s.queue.close();
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        if let Some(controller) = self.controller.take() {
            controller.stop();
        }
        if let Some(reporter) = self.reporter.take() {
            reporter.stop();
        }
        // Everything admitted has now been served; scoop up any responses
        // the caller has not collected so nothing is silently dropped.
        let mut leftover = Vec::new();
        while let Some(r) = self.shared.out.try_pop() {
            leftover.push(r);
        }
        let mut leftover_frames = Vec::new();
        while let Some(r) = self.shared.out_frames.try_pop() {
            leftover_frames.push(r);
        }
        (self.shared.metrics.snapshot(&[]), leftover, leftover_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn request(id: u64, rng: &mut StdRng, c: &Constellation) -> DetectionRequest {
        let snr = 12.0;
        let f = FrameData::generate(4, 4, c, noise_variance(snr, 4), rng);
        DetectionRequest::new(id, f, snr, Duration::from_millis(10))
    }

    #[test]
    fn capacity_split_covers_total_and_floors_at_one() {
        assert_eq!(split_capacity(8, 3), vec![3, 3, 2]);
        assert_eq!(split_capacity(4, 4), vec![1, 1, 1, 1]);
        assert_eq!(split_capacity(2, 4), vec![1, 1, 1, 1], "rounds up");
        assert_eq!(split_capacity(256, 1), vec![256]);
    }

    #[test]
    fn default_allowance_tracks_the_host() {
        let n = default_core_allowance();
        assert!((1..=16).contains(&n));
        assert_eq!(n, host_cores().clamp(1, 16));
        assert_eq!(ServeConfig::default().n_workers, n);
    }

    #[test]
    fn shard_count_resolves_auto_and_clamps() {
        let c = Constellation::new(Modulation::Qam4);
        // 0 = one shard per worker.
        let rt = ServeRuntime::start(
            ServeConfig::default().with_workers(3).with_shards(0),
            c.clone(),
        );
        assert_eq!(rt.n_shards(), 3);
        rt.shutdown();
        // More shards than workers clamps down, so no shard is orphaned.
        let rt = ServeRuntime::start(
            ServeConfig::default().with_workers(2).with_shards(5),
            c.clone(),
        );
        assert_eq!(rt.n_shards(), 2);
        rt.shutdown();
    }

    #[test]
    fn serves_and_shuts_down() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(7);
        for id in 0..20 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        let mut got = 0;
        while got < 20 {
            if rt.collect_timeout(Duration::from_secs(5)).is_some() {
                got += 1;
            } else {
                panic!("runtime stalled");
            }
        }
        let (snap, leftover, _) = rt.shutdown();
        assert!(leftover.is_empty());
        assert_eq!(snap.accepted, 20);
        assert_eq!(snap.served, 20);
        assert_eq!(snap.rejected_full + snap.rejected_shutdown, 0);
        assert_eq!(snap.host_cores, host_cores());
        assert_eq!(snap.n_shards, 1);
        assert_eq!(snap.shards[0].routed, 20);
        assert_eq!(snap.shards[0].served, 20);
        assert_eq!(snap.shards[0].affinity_served, 20);
    }

    #[test]
    fn sharded_runtime_routes_and_serves_everything() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(
            ServeConfig::default().with_workers(2).with_shards(2),
            c.clone(),
        );
        let mut rng = StdRng::seed_from_u64(77);
        for id in 0..40 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        let mut got = 0;
        while got < 40 {
            assert!(
                rt.collect_timeout(Duration::from_secs(5)).is_some(),
                "sharded runtime stalled"
            );
            got += 1;
        }
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.n_shards, 2);
        assert_eq!(snap.served, 40);
        let routed: u64 = snap.shards.iter().map(|s| s.routed).sum();
        let served: u64 = snap.shards.iter().map(|s| s.served).sum();
        assert_eq!(routed, snap.accepted, "routing partitions admission");
        assert_eq!(served, snap.served, "shard serves partition the total");
        assert!(
            snap.shards.iter().all(|s| s.routed > 0),
            "i.i.d. channels should spread across both shards: {:?}",
            snap.shards
        );
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1).paused(), c.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for id in 0..5 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        // Workers are gated; shutdown must still serve all 5.
        let (snap, leftover, _) = rt.shutdown();
        assert_eq!(snap.served, 5, "drain-then-join");
        assert_eq!(leftover.len(), 5, "uncollected responses handed back");
    }

    #[test]
    fn snapshot_never_reports_missed_above_served() {
        // Zero deadlines make every served request a miss; concurrent
        // snapshots taken mid-batch must still satisfy missed ≤ served
        // (the old per-batch `served` bump could report miss rates > 1).
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let mut submitted = 0u64;
        for id in 0..200 {
            let snr = 12.0;
            let f = FrameData::generate(4, 4, &c, noise_variance(snr, 4), &mut rng);
            if rt
                .submit(DetectionRequest::new(id, f, snr, Duration::ZERO))
                .is_ok()
            {
                submitted += 1;
            }
            let snap = rt.metrics();
            assert!(
                snap.deadline_missed <= snap.served,
                "missed {} > served {}",
                snap.deadline_missed,
                snap.served
            );
            assert!(snap.deadline_miss_rate <= 1.0);
        }
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.served, submitted);
        assert_eq!(snap.deadline_missed, submitted, "zero deadline misses all");
        assert!((snap.deadline_miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reporter_thread_reports_and_stops() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(1)
                .with_reporter(Duration::from_millis(5), ExportFormat::JsonLines),
            c.clone(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        for id in 0..8 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        // Let at least one reporting period elapse with the runtime live.
        std::thread::sleep(Duration::from_millis(25));
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.served, 8, "reporter must not disturb serving");
    }

    #[test]
    fn budget_controller_plans_and_stops() {
        let c = Constellation::new(Modulation::Qam4);
        let handle = Arc::new(WorkerBudget::new(1));
        let rt = ServeRuntime::start(
            ServeConfig::default().with_workers(1).with_core_budget(
                Arc::clone(&handle),
                CoreBudgetPolicy {
                    cores: 4,
                    period: Duration::from_millis(5),
                    ..CoreBudgetPolicy::default()
                },
            ),
            c.clone(),
        );
        // The controller starts on the latency plan immediately.
        assert_eq!(handle.get(), 4);
        assert_eq!(rt.metrics().core_budget, 4);
        let mut rng = StdRng::seed_from_u64(12);
        for id in 0..8 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        std::thread::sleep(Duration::from_millis(25));
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.served, 8, "controller must not disturb serving");
        assert!(snap.core_budget >= 1);
    }

    fn frame_request(id: u64, block: usize, rng: &mut StdRng, c: &Constellation) -> FrameRequest {
        let snr = 12.0;
        let sigma2 = noise_variance(snr, 4);
        let base = FrameData::generate(4, 4, c, sigma2, rng);
        let subcarriers = (0..block)
            .map(|_| {
                let mut f = base.clone();
                let fresh = FrameData::generate(4, 4, c, sigma2, rng);
                f.y = fresh.y;
                f.tx = fresh.tx;
                f
            })
            .collect();
        FrameRequest::new(id, subcarriers, snr, Duration::from_millis(50))
    }

    #[test]
    fn frames_round_trip_with_subcarrier_accounting() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(2), c.clone());
        let mut rng = StdRng::seed_from_u64(21);
        for id in 0..4 {
            rt.submit_frame(frame_request(id, 8, &mut rng, &c)).unwrap();
        }
        // Mixed traffic: a couple of plain vectors ride along.
        for id in 100..102 {
            rt.submit(request(id, &mut rng, &c)).unwrap();
        }
        let mut frames = Vec::new();
        while frames.len() < 4 {
            match rt.collect_frame_timeout(Duration::from_secs(5)) {
                Some(f) => frames.push(f),
                None => panic!("frame path stalled"),
            }
        }
        for f in &frames {
            assert_eq!(f.detections.len(), 8, "one detection per subcarrier");
            assert_eq!(f.prep_factors, 1, "shared-prep path on the stock registry");
        }
        for f in frames {
            rt.recycle_frame(f);
        }
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.frames_accepted, 4);
        assert_eq!(snap.frames_served, 4);
        assert_eq!(snap.frame_subcarriers, 32);
        assert_eq!(snap.frame_prep_factors, 4);
        assert!((snap.prep_amortization - 8.0).abs() < 1e-12);
        // Vector-level counters stay closed over the mixture.
        assert_eq!(snap.accepted, 32 + 2);
        assert_eq!(snap.served, 32 + 2);
        assert_eq!(
            snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
            snap.served
        );
        // Shard accounting weighs frames by their subcarriers.
        assert_eq!(snap.shards[0].routed, 34);
        assert_eq!(snap.shards[0].served, 34);
    }

    #[test]
    fn shutdown_hands_back_uncollected_frames() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(22);
        for id in 0..3 {
            rt.submit_frame(frame_request(id, 4, &mut rng, &c)).unwrap();
        }
        let (snap, _, leftover_frames) = rt.shutdown();
        assert_eq!(snap.frames_served, 3, "drain-then-join covers frames");
        assert_eq!(leftover_frames.len(), 3, "uncollected frames handed back");
    }

    #[test]
    fn recycle_frame_returns_block_ownership() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(23);
        rt.submit_frame(frame_request(7, 5, &mut rng, &c)).unwrap();
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(5))
            .expect("served");
        assert_eq!(resp.request.id, 7);
        let req = rt.recycle_frame(resp);
        assert_eq!(req.block_len(), 5);
        rt.submit_frame(req).unwrap();
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(5))
            .expect("served again");
        assert_eq!(resp.request.id, 7);
        rt.shutdown();
    }

    #[test]
    fn recycle_returns_request_ownership() {
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(ServeConfig::default().with_workers(1), c.clone());
        let mut rng = StdRng::seed_from_u64(9);
        rt.submit(request(42, &mut rng, &c)).unwrap();
        let resp = rt.collect_timeout(Duration::from_secs(5)).expect("served");
        assert_eq!(resp.request.id, 42);
        let req = rt.recycle(resp);
        assert_eq!(req.id, 42);
        rt.submit(req).unwrap();
        let resp = rt.collect_timeout(Duration::from_secs(5)).expect("served");
        assert_eq!(resp.request.id, 42);
        rt.shutdown();
    }

    /// Regression for the tier-blind admission estimate: a backlog of
    /// cheap k-best-tier requests must not shed a probe that the queue
    /// could absorb hundreds of times over, even when the shard's *mean*
    /// service time is dominated by exact-tier milliseconds. Under the old
    /// `backlog × mean_service_ns` estimate, 20 queued items priced at a
    /// ≈80 ms blended mean predicted a 1.6 s wait and shed the 5 ms probe;
    /// the per-tier cost stamps price them at ≈15 µs each and admit it.
    /// The same gauge still sheds the probe once genuinely expensive
    /// exact-tier work is queued — the gate lost no teeth.
    #[test]
    fn mixed_tier_backlog_does_not_shed_cheap_requests() {
        use crate::budget::TierCostClass;
        let c = Constellation::new(Modulation::Qam4);
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(64)
                .with_predictive_admission(true)
                .paused(),
            c.clone(),
        );
        // Train the shard model directly (the runtime is paused, so the
        // EWMAs are exactly what we write): the exact tier costs 100 ms
        // per vector (1e6 nodes at 100 ns/node), the floor tier 1 µs.
        // The blended mean lands near 80 ms — the figure the old
        // tier-blind estimate would have priced *every* queued item at.
        let model = &rt.shared.shards[0].model;
        model.observe(0, &TierCostClass::Adaptive, 12.0, 1_000_000, 100_000_000);
        model.observe(2, &TierCostClass::Linear, 12.0, 0, 1_000);
        assert!(
            model.mean_service_ns() > 1e7,
            "the tier-blind mean must be milliseconds for the regression to bite"
        );

        let mut rng = StdRng::seed_from_u64(31);
        let mut req_with_deadline = |id: u64, deadline: Duration| {
            let f = FrameData::generate(4, 4, &c, noise_variance(12.0, 4), &mut rng);
            DetectionRequest::new(id, f, 12.0, deadline)
        };
        // 20 cheap requests: a 1 ms deadline rides the k-best tier
        // (148 nodes × 100 ns ≈ 15 µs per stamp, ≈ 0.3 ms queued total).
        for id in 0..20 {
            rt.submit(req_with_deadline(id, Duration::from_millis(1)))
                .expect("cheap-tier backlog must keep admitting cheap work");
        }
        // The probe the old estimate shed: 5 ms deadline against a queued
        // cost of ≈0.3 ms. Must be admitted.
        rt.submit(req_with_deadline(100, Duration::from_millis(5)))
            .expect("regression: tier-blind mean over-shed this probe");
        // Queue genuinely expensive work: 10 s deadlines ride the exact
        // tier at ≈100 ms per stamp.
        for id in 200..203 {
            rt.submit(req_with_deadline(id, Duration::from_secs(10)))
                .expect("expensive work within its own deadline is admissible");
        }
        // Now an identical probe *should* shed: ≈300 ms queued > 5 ms.
        let rej = rt
            .submit(req_with_deadline(101, Duration::from_millis(5)))
            .expect_err("exact-tier backlog must still trip the gate");
        assert!(matches!(rej.reason, RejectReason::PredictedLate { .. }));

        rt.resume();
        let (snap, _, _) = rt.shutdown();
        assert_eq!(snap.rejected_predicted, 1);
        assert_eq!(snap.served, 24, "everything admitted is served");
    }
}
