//! The tier registry: which detectors the runtime can degrade through.
//!
//! A [`Tier`] pairs a boxed [`PreparedDetector`] engine with a label (for
//! metrics and responses) and a [`TierCostClass`] telling the cost model
//! how to predict its decode time. The runtime holds a `Vec<Tier>`
//! ordered **most → least accurate**: the ladder walks it front to back
//! and serves the first tier whose predicted cost fits the remaining
//! deadline budget, falling through to the last tier (the floor) when
//! nothing fits. Tier *indices* into this vector are the identity used by
//! the ladder, the cost model, the metrics, and the responses.
//!
//! [`default_registry`] reproduces the fixed pre-registry ladder — exact
//! sphere decoding, then a K-best sweep, then MMSE — and any
//! [`crate::ServeRuntime::start_with_registry`] caller can stack a custom
//! descent (e.g. exact → best-first → K-best → MMSE) from the same parts.

use crate::budget::TierCostClass;
use crate::ladder::LadderConfig;
use sd_core::{
    KBestSd, MetricKind, MmseDetector, PreparedDetector, QuantizedFsd, QuantizedKBestSd,
    SphereDecoder,
};
use sd_wireless::Constellation;
use std::sync::Arc;

/// One rung of the degradation ladder.
pub struct Tier {
    /// Human-readable tier name, carried into responses and metrics.
    pub label: Arc<str>,
    /// How the cost model predicts this tier's decode time.
    pub cost: TierCostClass,
    /// The decode engine itself.
    pub detector: Box<dyn PreparedDetector<f64>>,
}

impl Tier {
    /// Build a tier from its parts.
    pub fn new(
        label: impl Into<Arc<str>>,
        cost: TierCostClass,
        detector: Box<dyn PreparedDetector<f64>>,
    ) -> Self {
        Tier {
            label: label.into(),
            cost,
            detector,
        }
    }
}

impl std::fmt::Debug for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tier")
            .field("label", &self.label)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// The stock three-rung descent: exact SD → K-best(`ladder.kbest_k`) →
/// MMSE. Decision-identical to the runtime's original hard-wired ladder.
pub fn default_registry(constellation: &Constellation, ladder: &LadderConfig) -> Vec<Tier> {
    vec![
        Tier::new(
            "exact",
            TierCostClass::Adaptive,
            Box::new(SphereDecoder::<f64>::new(constellation.clone())),
        ),
        Tier::new(
            "k-best",
            TierCostClass::fixed_kbest(ladder.kbest_k),
            Box::new(KBestSd::<f64>::new(constellation.clone(), ladder.kbest_k)),
        ),
        Tier::new(
            "mmse",
            TierCostClass::Linear,
            Box::new(MmseDetector::new(constellation.clone())),
        ),
    ]
}

/// The five-rung descent with the fixed-point engines as cheap rungs:
/// exact SD → float K-best → fixed-i16 K-best (ℓ2) → fixed-i16 FSD (ℓ∞)
/// → MMSE. The quantized tiers run the same sweeps on i16/i32 kernels
/// (within the measured ≤[`sd_core::MAX_QUANT_DEGRADATION_DB`] dB BER
/// cost), giving the ladder two extra stops between "approximate tree
/// search" and "no tree at all".
pub fn quantized_registry(constellation: &Constellation, ladder: &LadderConfig) -> Vec<Tier> {
    vec![
        Tier::new(
            "exact",
            TierCostClass::Adaptive,
            Box::new(SphereDecoder::<f64>::new(constellation.clone())),
        ),
        Tier::new(
            "k-best",
            TierCostClass::fixed_kbest(ladder.kbest_k),
            Box::new(KBestSd::<f64>::new(constellation.clone(), ladder.kbest_k)),
        ),
        Tier::new(
            "k-best-fx",
            TierCostClass::fixed_kbest(ladder.kbest_k),
            Box::new(QuantizedKBestSd::new(constellation.clone(), ladder.kbest_k)),
        ),
        Tier::new(
            "fsd-fx-linf",
            TierCostClass::fixed_fsd(1),
            Box::new(QuantizedFsd::new(constellation.clone()).with_metric(MetricKind::LInf)),
        ),
        Tier::new(
            "mmse",
            TierCostClass::Linear,
            Box::new(MmseDetector::new(constellation.clone())),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_wireless::Modulation;

    #[test]
    fn default_registry_shape() {
        let c = Constellation::new(Modulation::Qam4);
        let tiers = default_registry(&c, &LadderConfig::default());
        let labels: Vec<&str> = tiers.iter().map(|t| &*t.label).collect();
        assert_eq!(labels, ["exact", "k-best", "mmse"]);
        assert!(matches!(tiers[0].cost, TierCostClass::Adaptive));
        assert!(matches!(tiers[1].cost, TierCostClass::Fixed(_)));
        assert!(matches!(tiers[2].cost, TierCostClass::Linear));
    }

    #[test]
    fn registry_tiers_decode_through_the_engine_api() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sd_wireless::{noise_variance, FrameData};

        let c = Constellation::new(Modulation::Qam4);
        let tiers = default_registry(&c, &LadderConfig::default());
        let mut rng = StdRng::seed_from_u64(0x7EE5);
        let frame = FrameData::generate(4, 4, &c, noise_variance(20.0, 4), &mut rng);
        for tier in &tiers {
            let d = tier.detector.detect_frame(&frame);
            assert_eq!(d.indices.len(), 4, "tier {}", tier.label);
        }
    }

    #[test]
    fn quantized_registry_shape() {
        let c = Constellation::new(Modulation::Qam4);
        let tiers = quantized_registry(&c, &LadderConfig::default());
        let labels: Vec<&str> = tiers.iter().map(|t| &*t.label).collect();
        assert_eq!(
            labels,
            ["exact", "k-best", "k-best-fx", "fsd-fx-linf", "mmse"]
        );
        assert!(matches!(tiers[0].cost, TierCostClass::Adaptive));
        assert!(matches!(tiers[2].cost, TierCostClass::Fixed(_)));
        assert!(matches!(tiers[3].cost, TierCostClass::Fixed(_)));
        assert!(matches!(tiers[4].cost, TierCostClass::Linear));
    }

    #[test]
    fn quantized_tiers_decode_and_mostly_agree_at_high_snr() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sd_wireless::{noise_variance, FrameData};

        let c = Constellation::new(Modulation::Qam16);
        let tiers = quantized_registry(&c, &LadderConfig::default());
        let mut rng = StdRng::seed_from_u64(0xF1);
        let mut agree = [0usize; 5];
        const FRAMES: usize = 20;
        for _ in 0..FRAMES {
            let frame = FrameData::generate(8, 8, &c, noise_variance(24.0, 8), &mut rng);
            let exact = tiers[0].detector.detect_frame(&frame);
            for (t, tier) in tiers.iter().enumerate() {
                let d = tier.detector.detect_frame(&frame);
                assert_eq!(d.indices.len(), 8, "tier {}", tier.label);
                agree[t] += usize::from(d.indices == exact.indices);
            }
        }
        // At 24 dB every tree rung should virtually always match exact;
        // the quantized rungs are gated far tighter than this elsewhere.
        for (t, tier) in tiers.iter().enumerate().take(4) {
            assert!(
                agree[t] >= FRAMES - 2,
                "tier {} agreed on only {}/{FRAMES} frames",
                tier.label,
                agree[t]
            );
        }
    }
}
