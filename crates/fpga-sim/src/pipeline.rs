//! The complete FPGA decode pipeline (Fig. 4).
//!
//! Executes the paper's sorted-DFS sphere decoder *functionally* (the
//! symbol decisions are checked bit-identical to `sd-core`'s
//! `SphereDecoder<f32>`) while charging cycles to the hardware stages:
//!
//! ```text
//! pop ──▶ prefetch (MST walk, addr gen) ──▶ GEMM (systolic) ──▶ NORM ──▶ sort ──▶ commit/prune
//! ```
//!
//! In the **baseline** variant the stages execute back-to-back and every
//! block fetch pays the irregular-access penalty at 253 MHz. In the
//! **optimized** variant the dataflow stages overlap (the per-expansion
//! cost is the bottleneck stage), the prefetch unit hides fetch latency
//! behind the GEMM, and the clock is 300 MHz. Decode time is
//! `cycles / f_clk`; the node counts — and therefore the SNR shape of
//! every figure — come from the real search.

use crate::config::{FpgaConfig, Variant};
use crate::device::DeviceModel;
use crate::mst::{MetaStateTable, NodeId, ROOT_PARENT};
use crate::prefetch::PrefetchUnit;
use crate::sort_unit::BitonicSorter;
use crate::systolic::SystolicGemm;
use sd_core::pd::{eval_children, EvalStrategy, PdScratch};
use sd_core::InitialRadius;
use sd_core::{preprocess, Detection, DetectionStats, Detector, Prepared};
use sd_wireless::{Constellation, FrameData};
use serde::{Deserialize, Serialize};

/// NORM unit pipeline depth (subtract + squared-magnitude + accumulate).
const NORM_LATENCY: u64 = 12;

/// Per-expansion control overhead (state machine, list update).
const CONTROL_OPTIMIZED: u64 = 4;
/// Baseline control overhead: the un-specialized sequencing logic the
/// paper eliminates by building one design per modulation.
const CONTROL_BASELINE: u64 = 16;

/// Cycles to pop and discard a pruned list entry.
const PRUNE_POP_CYCLES: u64 = 2;

/// Cycles to broadcast a radius update to the pruning unit.
const RADIUS_BROADCAST_CYCLES: u64 = 3;

/// HLS dataflow FIFO handshake + FSM transition per stage activation.
///
/// Expansions cannot be pipelined against each other: the LIFO pop that
/// selects the next node depends on the sorted result of the current one
/// (the "synchronization step" of Sec. III-A). Every expansion therefore
/// pays the full stage-handoff latency chain — this, not arithmetic, is
/// what keeps the measured per-expansion cost in the paper's microsecond
/// range.
const STAGE_HANDOFF: u64 = 30;
/// Dataflow stages in the Fig. 4 pipeline (branch, prefetch, GEMM, NORM,
/// sort/prune).
const PIPELINE_STAGES: u64 = 5;

/// Initiation interval of the floating-point accumulation recurrence in
/// the optimized engine's drain path.
const ACC_II_OPTIMIZED: u64 = 4;
/// The baseline's direct HLS port performs sequential scalar MACs with
/// the full fp32 adder dependency (no tree reduction).
const ACC_II_BASELINE: u64 = 8;
/// Baseline per-word URAM port-contention penalty (no partitioning).
const URAM_CONTENTION: u64 = 2;
/// Cycles per MST parent-link hop (optimized: indexed bank read).
const WALK_OPTIMIZED: u64 = 3;
/// Cycles per parent hop in the baseline's pointer-chasing port.
const WALK_BASELINE: u64 = 5;

/// Per-stage cycle accounting of one decode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// One-time host→HBM transfer.
    pub host_transfer: u64,
    /// Visible (un-hidden) prefetch cycles.
    pub prefetch: u64,
    /// Systolic GEMM cycles.
    pub gemm: u64,
    /// NORM unit cycles.
    pub norm: u64,
    /// Bitonic sort cycles.
    pub sort: u64,
    /// Control, list management, radius broadcast, pruned pops.
    pub control: u64,
}

impl CycleBreakdown {
    /// Total cycles on the critical path.
    pub fn total(&self) -> u64 {
        self.host_transfer + self.prefetch + self.gemm + self.norm + self.sort + self.control
    }

    /// Render the cycle accounting through the unified observability
    /// schema ([`sd_core::PhaseProfile`], unit = cycles): host transfer
    /// and prefetch are decode preparation, GEMM + NORM are expansion,
    /// the bitonic sorter is the sort phase, and control/list management
    /// is leaf/bookkeeping work. `total()` is preserved exactly.
    pub fn phase_profile(&self) -> sd_core::PhaseProfile {
        let mut p = sd_core::PhaseProfile::new(sd_core::PhaseUnit::Cycles);
        p.record(sd_core::Phase::Prepare, self.host_transfer + self.prefetch);
        p.record(sd_core::Phase::Expand, self.gemm + self.norm);
        p.record(sd_core::Phase::Sort, self.sort);
        p.record(sd_core::Phase::Leaf, self.control);
        p
    }
}

/// Full report of one FPGA decode.
#[derive(Clone, Debug)]
pub struct FpgaDecodeReport {
    /// The decoded symbols and search statistics.
    pub detection: Detection,
    /// Cycle accounting.
    pub cycles: CycleBreakdown,
    /// Wall-clock decode time implied by the cycle count and clock.
    pub decode_seconds: f64,
    /// Peak nodes simultaneously live in the MST.
    pub mst_peak_nodes: usize,
    /// On-chip bits the MST contents occupied at the end of the decode.
    pub mst_bits: u64,
    /// `true` when the MST fits the device's on-chip memory budget
    /// (URAM + BRAM, 60 % usable for the table).
    pub mst_fits_onchip: bool,
}

impl FpgaDecodeReport {
    /// The cycle accounting in the unified [`sd_core::PhaseProfile`]
    /// schema (see [`CycleBreakdown::phase_profile`]).
    pub fn phase_profile(&self) -> sd_core::PhaseProfile {
        self.cycles.phase_profile()
    }
}

/// The FPGA sphere-decoder accelerator model.
#[derive(Clone, Debug)]
pub struct FpgaSphereDecoder {
    config: FpgaConfig,
    device: DeviceModel,
    constellation: Constellation,
    engine: SystolicGemm,
    sorter: BitonicSorter,
    prefetch: PrefetchUnit,
    /// Initial radius policy (default: infinite, as in `sd-core`).
    pub initial_radius: InitialRadius,
}

impl FpgaSphereDecoder {
    /// Instantiate the accelerator for a configuration on a device.
    pub fn new(config: FpgaConfig, constellation: Constellation) -> Self {
        assert_eq!(
            config.modulation,
            constellation.modulation(),
            "bitstream was synthesized for a different modulation"
        );
        let engine = SystolicGemm::new(config.array_rows, config.array_cols);
        let sorter = BitonicSorter::new(constellation.order());
        let prefetch = if config.has_prefetch() {
            PrefetchUnit::enabled()
        } else {
            PrefetchUnit::disabled()
        };
        FpgaSphereDecoder {
            config,
            device: DeviceModel::alveo_u280(),
            constellation,
            engine,
            sorter,
            prefetch,
            initial_radius: InitialRadius::Infinite,
        }
    }

    /// The configuration this accelerator was built with.
    pub fn config(&self) -> &FpgaConfig {
        &self.config
    }

    /// The device model hosting the accelerator.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Decode with full cycle/occupancy reporting.
    pub fn decode_with_report(&self, frame: &FrameData) -> FpgaDecodeReport {
        let prep: Prepared<f32> = preprocess(frame, &self.constellation);
        let m = prep.n_tx;
        let p = prep.order;
        let mut cycles = CycleBreakdown::default();

        // One-time host → HBM transfer of H, y and the constellation
        // (Sec. III-B: evaluated to be <3 % of execution).
        let transfer_bytes = (frame.h.rows() * m + frame.h.rows() + p) as u64 * 8;
        let transfer_seconds = transfer_bytes as f64 / self.device.pcie_bandwidth as f64;
        cycles.host_transfer = (transfer_seconds * self.config.freq_mhz() * 1e6).ceil() as u64;

        let mut stats = DetectionStats {
            per_level_generated: vec![0; m],
            ..Default::default()
        };
        let mut scratch = PdScratch::new(p, m);
        let mut mst = MetaStateTable::new(m);

        let mut r2 = self
            .initial_radius
            .resolve(frame.h.rows(), frame.noise_variance) as f32;
        let mut best: Option<(f32, Vec<usize>)> = None;

        loop {
            mst.clear();
            // LIFO list of open nodes; `None` marks the root.
            let mut list: Vec<(f32, Option<NodeId>)> = vec![(0.0, None)];
            while let Some((pd, id)) = list.pop() {
                let bound = best.as_ref().map_or(r2, |(b, _)| *b);
                if !(pd < bound) {
                    // Pruned at pop time: the radius shrank since insertion.
                    stats.nodes_pruned += 1;
                    cycles.control += PRUNE_POP_CYCLES;
                    if let Some(id) = id {
                        mst.release(id);
                    }
                    continue;
                }
                if let Some(id) = id {
                    mst.mark_expanded(id);
                }
                let depth = id.map_or(0, |n| n.level as usize + 1);
                let path = id.map_or_else(Vec::new, |n| mst.path(n));
                debug_assert_eq!(path.len(), depth);

                // ---- Phase 1-2: branch + evaluate (prefetch + GEMM + NORM)
                stats.nodes_expanded += 1;
                stats.flops += eval_children(&prep, &path, EvalStrategy::Gemm, &mut scratch);
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;

                // R row block + tree-state block + ȳ element, in 32-bit
                // complex words.
                let fetch_words = 4 * depth + 4;

                // ---- Phase 3: sort + prune + commit
                let mut children: Vec<(f32, usize)> = scratch
                    .increments
                    .iter()
                    .enumerate()
                    .map(|(c, &inc)| (pd + inc, c))
                    .collect();
                self.sorter.sort(&mut children);

                // Cycle charging. Expansions are serialized by the LIFO
                // dependency (the next pop needs this sort's result), so
                // every expansion pays its full stage chain.
                if self.config.stages_overlap() {
                    // Optimized: MST walk via indexed banks, prefetch
                    // hidden under the walk+GEMM, systolic engine, then a
                    // stage-handoff chain.
                    let walk = WALK_OPTIMIZED * depth as u64;
                    let gemm_cycles =
                        self.engine.cycles(1, depth + 1, p) + ACC_II_OPTIMIZED * (depth as u64 + 1);
                    let exposed = self
                        .prefetch
                        .exposed_cycles(fetch_words, walk + gemm_cycles);
                    cycles.prefetch += exposed;
                    cycles.gemm += gemm_cycles;
                    cycles.norm += NORM_LATENCY + 2 * p as u64;
                    cycles.sort += self.sorter.cycles();
                    cycles.control += walk
                        + 3 * p as u64 // MST/list commit of the children
                        + CONTROL_OPTIMIZED
                        + PIPELINE_STAGES * STAGE_HANDOFF;
                } else {
                    // Baseline direct port: pointer walk, un-prefetched
                    // irregular reads with URAM contention, sequential
                    // scalar MACs (full fp-add dependency), sequential
                    // norms, insertion sort, heavyweight control.
                    let walk = WALK_BASELINE * depth as u64;
                    cycles.prefetch += self.prefetch.fetch_cycles(fetch_words)
                        + URAM_CONTENTION * fetch_words as u64;
                    cycles.gemm += (p as u64) * (depth as u64 + 1) * ACC_II_BASELINE;
                    cycles.norm += (p as u64) * NORM_LATENCY;
                    cycles.sort += 2 * (p * p) as u64;
                    cycles.control +=
                        walk + 4 * p as u64 + CONTROL_BASELINE + PIPELINE_STAGES * STAGE_HANDOFF;
                }

                let bound = best.as_ref().map_or(r2, |(b, _)| *b);
                if depth + 1 == m {
                    // Children are leaves: Algorithm 1 lines 7–9 register
                    // the decoded symbols immediately, so leaves are never
                    // stored in the MST.
                    for &(child_pd, c) in &children {
                        if child_pd < best.as_ref().map_or(r2, |(b, _)| *b) {
                            stats.leaves_reached += 1;
                            stats.radius_updates += 1;
                            cycles.control += RADIUS_BROADCAST_CYCLES;
                            let mut leaf = path.clone();
                            leaf.push(c);
                            best = Some((child_pd, leaf));
                        } else {
                            stats.nodes_pruned += 1;
                        }
                    }
                    // Leaf parents never gain MST children: retire now.
                    if let Some(id) = id {
                        mst.release(id);
                    }
                } else {
                    // Sorted insertion (Fig. 3): push worst-first so the
                    // best child pops first (LIFO).
                    let mut survivors = 0usize;
                    for &(child_pd, c) in children.iter().rev() {
                        if child_pd < bound {
                            let parent_slot = id.map_or(ROOT_PARENT, |n| n.slot);
                            let node = mst.insert(depth, parent_slot, c as u16, child_pd);
                            list.push((child_pd, Some(node)));
                            survivors += 1;
                        } else {
                            stats.nodes_pruned += 1;
                        }
                    }
                    if survivors == 0 {
                        // Fully pruned expansion: retire the record (and
                        // cascade to finished ancestors).
                        if let Some(id) = id {
                            mst.release(id);
                        }
                    }
                }
            }
            if best.is_some() {
                break;
            }
            r2 *= InitialRadius::RESTART_GROWTH as f32;
            stats.restarts += 1;
            assert!(stats.restarts < 64, "radius failed to capture any leaf");
        }

        let (best_pd, best_path) = best.expect("loop exits only with a solution");
        stats.final_radius_sqr = best_pd as f64;
        stats.flops += prep.prep_flops;
        let indices = prep.indices_from_path(&best_path);

        let mst_bits = mst.storage_bits();
        let budget = (self.device.onchip_bits() as f64 * 0.6) as u64;
        FpgaDecodeReport {
            detection: Detection { indices, stats },
            cycles,
            decode_seconds: cycles.total() as f64 * self.config.cycle_time(),
            mst_peak_nodes: mst.peak(),
            mst_bits,
            mst_fits_onchip: mst_bits <= budget,
        }
    }
}

impl Detector for FpgaSphereDecoder {
    fn name(&self) -> &'static str {
        match self.config.variant {
            Variant::Baseline => "FPGA baseline",
            Variant::Optimized => "FPGA optimized",
        }
    }

    fn detect(&self, frame: &FrameData) -> Detection {
        self.decode_with_report(frame).detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_core::SphereDecoder;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn decisions_match_software_f32_decoder() {
        let (c, frames) = frames(8, Modulation::Qam4, 8.0, 20, 200);
        let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 8), c.clone());
        let sw: SphereDecoder<f32> = SphereDecoder::new(c);
        for f in &frames {
            let a = hw.detect(f);
            let b = sw.detect(f);
            assert_eq!(a.indices, b.indices, "hardware must match software");
            assert_eq!(a.stats.nodes_expanded, b.stats.nodes_expanded);
            assert_eq!(a.stats.nodes_generated, b.stats.nodes_generated);
        }
    }

    #[test]
    fn phase_profile_preserves_cycle_total() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 5, 205);
        let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 6), c);
        for f in &frames {
            let report = hw.decode_with_report(f);
            let profile = report.phase_profile();
            assert_eq!(profile.unit, sd_core::PhaseUnit::Cycles);
            assert_eq!(
                profile.total(),
                report.cycles.total(),
                "schema mapping must not lose cycles"
            );
            assert_eq!(
                profile.get(sd_core::Phase::Expand),
                report.cycles.gemm + report.cycles.norm
            );
            assert_eq!(profile.get(sd_core::Phase::Sort), report.cycles.sort);
            assert!(profile.render().ends_with("cyc"));
        }
    }

    #[test]
    fn baseline_and_optimized_same_answer_different_time() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 10, 201);
        let base = FpgaSphereDecoder::new(FpgaConfig::baseline(Modulation::Qam4, 6), c.clone());
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 6), c);
        for f in &frames {
            let rb = base.decode_with_report(f);
            let ro = opt.decode_with_report(f);
            assert_eq!(rb.detection.indices, ro.detection.indices);
            assert!(
                ro.decode_seconds < rb.decode_seconds,
                "optimized ({}) must beat baseline ({})",
                ro.decode_seconds,
                rb.decode_seconds
            );
        }
    }

    #[test]
    fn optimized_speedup_is_substantial() {
        // The paper reports ~3.5× baseline→optimized at 10×10 4-QAM
        // (Fig. 6: 1.4× vs 5× over CPU). Require at least 2×.
        let (c, frames) = frames(10, Modulation::Qam4, 8.0, 10, 202);
        let base = FpgaSphereDecoder::new(FpgaConfig::baseline(Modulation::Qam4, 10), c.clone());
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 10), c);
        let tb: f64 = frames
            .iter()
            .map(|f| base.decode_with_report(f).decode_seconds)
            .sum();
        let to: f64 = frames
            .iter()
            .map(|f| opt.decode_with_report(f).decode_seconds)
            .sum();
        let speedup = tb / to;
        assert!(
            speedup > 2.0,
            "baseline/optimized speedup only {speedup:.2}×"
        );
    }

    #[test]
    fn decode_time_decreases_with_snr() {
        let (c, lo) = frames(10, Modulation::Qam4, 4.0, 10, 203);
        let (_, hi) = frames(10, Modulation::Qam4, 16.0, 10, 203);
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 10), c);
        let t_lo: f64 = lo
            .iter()
            .map(|f| opt.decode_with_report(f).decode_seconds)
            .sum();
        let t_hi: f64 = hi
            .iter()
            .map(|f| opt.decode_with_report(f).decode_seconds)
            .sum();
        assert!(
            t_hi * 2.0 < t_lo,
            "time must shrink with SNR: {t_lo} vs {t_hi}"
        );
    }

    #[test]
    fn host_transfer_is_negligible() {
        // Sec. III-B: < 3 % of overall execution.
        let (c, frames) = frames(10, Modulation::Qam4, 4.0, 5, 204);
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 10), c);
        for f in &frames {
            let r = opt.decode_with_report(f);
            let frac = r.cycles.host_transfer as f64 / r.cycles.total() as f64;
            assert!(frac < 0.03, "transfer fraction {frac}");
        }
    }

    #[test]
    fn sixteen_qam_slower_than_four_qam() {
        // Sec. IV-E: modulation dominates complexity.
        let (c4, f4) = frames(6, Modulation::Qam4, 8.0, 8, 205);
        let (c16, f16) = frames(6, Modulation::Qam16, 8.0, 8, 205);
        let d4 = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 6), c4);
        let d16 = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam16, 6), c16);
        let t4: f64 = f4
            .iter()
            .map(|f| d4.decode_with_report(f).decode_seconds)
            .sum();
        let t16: f64 = f16
            .iter()
            .map(|f| d16.decode_with_report(f).decode_seconds)
            .sum();
        assert!(t16 > 3.0 * t4, "16-QAM ({t16}) must dwarf 4-QAM ({t4})");
    }

    #[test]
    fn mst_fits_onchip_for_paper_configs() {
        let (c, frames) = frames(20, Modulation::Qam4, 4.0, 3, 206);
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 20), c);
        for f in &frames {
            let r = opt.decode_with_report(f);
            assert!(r.mst_fits_onchip, "20×20 4-QAM MST must fit URAM");
            assert!(r.mst_peak_nodes > 0);
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 3, 207);
        let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 6), c);
        for f in &frames {
            let r = opt.decode_with_report(f);
            let b = r.cycles;
            assert_eq!(
                b.total(),
                b.host_transfer + b.prefetch + b.gemm + b.norm + b.sort + b.control
            );
            assert!(b.gemm > 0 && b.control > 0);
        }
    }

    #[test]
    #[should_panic(expected = "different modulation")]
    fn mismatched_bitstream_rejected() {
        FpgaSphereDecoder::new(
            FpgaConfig::optimized(Modulation::Qam4, 4),
            Constellation::new(Modulation::Qam16),
        );
    }
}
