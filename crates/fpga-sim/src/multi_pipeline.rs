//! Multi-pipeline deployment — the pay-off of the paper's resource
//! optimization.
//!
//! Sec. III-C4 optimizes area precisely so that "one may … instantiate a
//! second pipeline path to exploit more data parallelism". This module
//! instantiates `k` independent decode pipelines on one U280 (validated
//! against the area model) and schedules a batch of frames across them,
//! reporting the makespan and per-pipeline utilization. Frames are
//! independent channel uses, so pipelines never synchronize — linear
//! throughput scaling is the expected (and tested) outcome.

use crate::config::FpgaConfig;
use crate::pipeline::{FpgaDecodeReport, FpgaSphereDecoder};
use crate::resources::estimate_resources;
use sd_wireless::{Constellation, FrameData};

/// Outcome of a batch decode across pipelines.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-frame reports, input order.
    pub reports: Vec<FpgaDecodeReport>,
    /// Pipeline index each frame ran on.
    pub assignment: Vec<usize>,
    /// Simulated completion time of the whole batch.
    pub makespan_seconds: f64,
    /// Busy time per pipeline.
    pub busy_seconds: Vec<f64>,
}

impl BatchReport {
    /// Frames per second the deployment sustained on this batch.
    pub fn throughput(&self) -> f64 {
        if self.makespan_seconds == 0.0 {
            0.0
        } else {
            self.reports.len() as f64 / self.makespan_seconds
        }
    }

    /// Mean pipeline utilization (busy / makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan_seconds == 0.0 {
            return 0.0;
        }
        let total_busy: f64 = self.busy_seconds.iter().sum();
        total_busy / (self.makespan_seconds * self.busy_seconds.len() as f64)
    }
}

/// `k` identical decode pipelines on one device.
#[derive(Clone, Debug)]
pub struct MultiPipeline {
    pipelines: Vec<FpgaSphereDecoder>,
}

impl MultiPipeline {
    /// Instantiate `count` copies of `config`.
    ///
    /// # Panics
    /// If the combined utilization does not fit the device — the same
    /// feasibility check the paper's Table I argument rests on.
    pub fn new(config: FpgaConfig, constellation: Constellation, count: usize) -> Self {
        assert!(count >= 1, "need at least one pipeline");
        let usage = estimate_resources(&config);
        let max_frac = [usage.luts, usage.ffs, usage.dsps, usage.brams, usage.urams]
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            max_frac * count as f64 <= 1.0,
            "{count} pipelines need {:.0}% of the binding resource — does not fit the U280",
            max_frac * count as f64 * 100.0
        );
        MultiPipeline {
            pipelines: (0..count)
                .map(|_| FpgaSphereDecoder::new(config.clone(), constellation.clone()))
                .collect(),
        }
    }

    /// Largest pipeline count of this config that fits the device.
    pub fn max_pipelines(config: &FpgaConfig) -> usize {
        let usage = estimate_resources(config);
        let max_frac = [usage.luts, usage.ffs, usage.dsps, usage.brams, usage.urams]
            .into_iter()
            .fold(0.0f64, f64::max);
        if max_frac <= 0.0 {
            1
        } else {
            (1.0 / max_frac).floor().max(0.0) as usize
        }
    }

    /// Number of instantiated pipelines.
    pub fn count(&self) -> usize {
        self.pipelines.len()
    }

    /// Decode a batch: frames are dispatched greedily to the least-loaded
    /// pipeline (online LPT), which is how a simple hardware arbiter
    /// behaves.
    pub fn decode_batch(&self, frames: &[FrameData]) -> BatchReport {
        let mut busy = vec![0.0f64; self.pipelines.len()];
        let mut reports = Vec::with_capacity(frames.len());
        let mut assignment = Vec::with_capacity(frames.len());
        for frame in frames {
            let (idx, _) = busy
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite busy times"))
                .expect("at least one pipeline");
            let report = self.pipelines[idx].decode_with_report(frame);
            busy[idx] += report.decode_seconds;
            assignment.push(idx);
            reports.push(report);
        }
        let makespan = busy.iter().copied().fold(0.0f64, f64::max);
        BatchReport {
            reports,
            assignment,
            makespan_seconds: makespan,
            busy_seconds: busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(n: usize, count: usize) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(8.0, n);
        let mut rng = StdRng::seed_from_u64(400);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn two_pipelines_nearly_double_throughput() {
        let (c, fs) = frames(8, 24);
        let config = FpgaConfig::optimized(Modulation::Qam4, 8);
        let one = MultiPipeline::new(config.clone(), c.clone(), 1).decode_batch(&fs);
        let two = MultiPipeline::new(config, c, 2).decode_batch(&fs);
        let scaling = two.throughput() / one.throughput();
        assert!(
            scaling > 1.6,
            "2 pipelines scaled only {scaling:.2}× on 24 frames"
        );
        assert!(two.utilization() > 0.8, "both pipelines must stay busy");
    }

    #[test]
    fn decisions_identical_regardless_of_pipeline_count() {
        let (c, fs) = frames(6, 10);
        let config = FpgaConfig::optimized(Modulation::Qam4, 6);
        let one = MultiPipeline::new(config.clone(), c.clone(), 1).decode_batch(&fs);
        let three = MultiPipeline::new(config, c, 3).decode_batch(&fs);
        for (a, b) in one.reports.iter().zip(three.reports.iter()) {
            assert_eq!(a.detection.indices, b.detection.indices);
        }
    }

    #[test]
    fn capacity_matches_table_1_story() {
        // Optimized 4-QAM (11% LUT binding) fits many pipelines; the
        // baseline 16-QAM (60% URAM) fits exactly one — the paper's
        // motivating observation.
        assert!(MultiPipeline::max_pipelines(&FpgaConfig::optimized(Modulation::Qam4, 10)) >= 2);
        assert_eq!(
            MultiPipeline::max_pipelines(&FpgaConfig::baseline(Modulation::Qam16, 10)),
            1
        );
        assert!(MultiPipeline::max_pipelines(&FpgaConfig::optimized(Modulation::Qam16, 10)) >= 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversubscription_rejected() {
        let c = Constellation::new(Modulation::Qam16);
        // Baseline 16-QAM needs 60% URAM: two copies cannot fit.
        MultiPipeline::new(FpgaConfig::baseline(Modulation::Qam16, 10), c, 2);
    }

    #[test]
    fn empty_batch_is_harmless() {
        let (c, _) = frames(4, 0);
        let mp = MultiPipeline::new(FpgaConfig::optimized(Modulation::Qam4, 4), c, 2);
        let r = mp.decode_batch(&[]);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.reports.len(), 0);
    }
}
