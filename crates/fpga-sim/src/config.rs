//! Accelerator build configurations.
//!
//! The paper synthesizes one design per modulation (Sec. III-C4) in two
//! flavours: the *baseline* direct HLS port and the *optimized* dataflow
//! pipeline. Frequencies are the paper's post-route results (Table I).

use sd_wireless::Modulation;
use serde::{Deserialize, Serialize};

/// Design variant of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Direct port of the C++ SD code through HLS: sequential stages, no
    /// prefetching, 253 MHz.
    Baseline,
    /// The paper's contribution: dataflow overlap, isolated GEMM engine,
    /// double-buffered prefetch, MST, per-modulation control, 300 MHz.
    Optimized,
}

/// One synthesized decoder configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FpgaConfig {
    /// Baseline or optimized design.
    pub variant: Variant,
    /// Modulation the bitstream was specialized for (Sec. III-C4: one
    /// design per modulation eliminates sequencing control logic).
    pub modulation: Modulation,
    /// Number of transmit antennas the design is dimensioned for.
    pub n_tx: usize,
    /// Systolic-array rows (complex MAC mesh height).
    pub array_rows: usize,
    /// Systolic-array columns; the natural choice is the modulation order
    /// so each column evaluates one child.
    pub array_cols: usize,
}

impl FpgaConfig {
    /// Baseline design for a modulation / antenna count.
    pub fn baseline(modulation: Modulation, n_tx: usize) -> Self {
        FpgaConfig {
            variant: Variant::Baseline,
            modulation,
            n_tx,
            array_rows: 4,
            array_cols: modulation.order().min(16),
        }
    }

    /// Optimized design for a modulation / antenna count.
    pub fn optimized(modulation: Modulation, n_tx: usize) -> Self {
        FpgaConfig {
            variant: Variant::Optimized,
            modulation,
            n_tx,
            array_rows: 4,
            array_cols: modulation.order().min(16),
        }
    }

    /// Builder: systolic-array geometry (for the engine-size ablation).
    pub fn with_array(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        self.array_rows = rows;
        self.array_cols = cols;
        self
    }

    /// Post-route clock frequency in MHz (Table I).
    pub fn freq_mhz(&self) -> f64 {
        match self.variant {
            Variant::Baseline => 253.0,
            Variant::Optimized => 300.0,
        }
    }

    /// Whether the prefetch/double-buffer unit is present.
    pub fn has_prefetch(&self) -> bool {
        self.variant == Variant::Optimized
    }

    /// Whether the dataflow stages overlap (II-pipelined) or execute
    /// sequentially.
    pub fn stages_overlap(&self) -> bool {
        self.variant == Variant::Optimized
    }

    /// Seconds per clock cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / (self.freq_mhz() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequencies() {
        assert_eq!(FpgaConfig::baseline(Modulation::Qam4, 10).freq_mhz(), 253.0);
        assert_eq!(
            FpgaConfig::optimized(Modulation::Qam16, 10).freq_mhz(),
            300.0
        );
    }

    #[test]
    fn variant_feature_flags() {
        let b = FpgaConfig::baseline(Modulation::Qam4, 10);
        let o = FpgaConfig::optimized(Modulation::Qam4, 10);
        assert!(!b.has_prefetch() && !b.stages_overlap());
        assert!(o.has_prefetch() && o.stages_overlap());
    }

    #[test]
    fn array_defaults_track_modulation() {
        assert_eq!(FpgaConfig::optimized(Modulation::Qam4, 10).array_cols, 4);
        assert_eq!(FpgaConfig::optimized(Modulation::Qam16, 10).array_cols, 16);
        assert_eq!(FpgaConfig::optimized(Modulation::Qam64, 10).array_cols, 16);
    }

    #[test]
    fn cycle_time_inverse_of_freq() {
        let o = FpgaConfig::optimized(Modulation::Qam4, 10);
        assert!((o.cycle_time() - 1.0 / 300e6).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_array_rejected() {
        let _ = FpgaConfig::optimized(Modulation::Qam4, 10).with_array(0, 4);
    }
}
