//! Meta State Table (Sec. III-C3, Fig. 5).
//!
//! Dynamic trees don't map to FPGA fabric: dynamic allocation is
//! unsupported and pointer-to-pointer chasing is slow. The paper's MST is
//! a per-level *database* of node records, indexed by `(level, slot)`;
//! each record links to its parent slot and caches its block of the
//! tree-state matrix, so the prefetch unit can compute every address from
//! plain indices.
//!
//! Hardware tables have fixed capacity, so slots are recycled: a record
//! dies when it is pruned before expansion, or when its last live child
//! dies after expansion (reference-count cascade). Under the LIFO
//! traversal the live set is only the ancestor chain plus the pending
//! siblings at each level — `O(M·P)` records — which is exactly why the
//! paper's MST fits in on-chip URAM even for 20×20 trees. The occupancy
//! high-water mark drives the resource model's memory sizing.

use serde::{Deserialize, Serialize};

/// Sentinel parent slot for level-0 nodes (children of the root).
pub const ROOT_PARENT: u32 = u32::MAX;

/// One MST entry's payload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Slot of the parent in level `level − 1` (or [`ROOT_PARENT`]).
    pub parent: u32,
    /// Constellation index chosen by this node's branch.
    pub symbol: u16,
    /// Partial distance of the node.
    pub pd: f32,
}

/// Identifier of a node in the MST.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeId {
    /// Tree level = depth (0 fixes the last antenna).
    pub level: u16,
    /// Slot within the level bank.
    pub slot: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Waiting in the tree list for expansion.
    Pending,
    /// Expanded; kept alive by `live_children`.
    Expanded,
    /// Recyclable.
    Free,
}

#[derive(Clone, Debug)]
struct Entry {
    rec: NodeRecord,
    live_children: u32,
    state: SlotState,
}

/// The per-level node banks with slot recycling.
#[derive(Clone, Debug)]
pub struct MetaStateTable {
    levels: Vec<Vec<Entry>>,
    free: Vec<Vec<u32>>,
    live: usize,
    peak_live: usize,
    peak_per_level: Vec<usize>,
}

impl MetaStateTable {
    /// Table for a tree of `n_tx` levels.
    pub fn new(n_tx: usize) -> Self {
        assert!(n_tx > 0, "tree needs at least one level");
        MetaStateTable {
            levels: vec![Vec::new(); n_tx],
            free: vec![Vec::new(); n_tx],
            live: 0,
            peak_live: 0,
            peak_per_level: vec![0; n_tx],
        }
    }

    /// Number of tree levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Insert a pending node; returns its id. Increments the parent's
    /// live-child count.
    pub fn insert(&mut self, level: usize, parent: u32, symbol: u16, pd: f32) -> NodeId {
        if level > 0 {
            let pe = &mut self.levels[level - 1][parent as usize];
            debug_assert_ne!(pe.state, SlotState::Free, "dangling parent reference");
            pe.live_children += 1;
        } else {
            debug_assert_eq!(parent, ROOT_PARENT, "level-0 parents must be the root");
        }
        let entry = Entry {
            rec: NodeRecord { parent, symbol, pd },
            live_children: 0,
            state: SlotState::Pending,
        };
        let slot = if let Some(slot) = self.free[level].pop() {
            self.levels[level][slot as usize] = entry;
            slot
        } else {
            self.levels[level].push(entry);
            (self.levels[level].len() - 1) as u32
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        let level_live = self.levels[level]
            .iter()
            .filter(|e| e.state != SlotState::Free)
            .count();
        self.peak_per_level[level] = self.peak_per_level[level].max(level_live);
        NodeId {
            level: level as u16,
            slot,
        }
    }

    /// Fetch a record.
    pub fn get(&self, id: NodeId) -> NodeRecord {
        let e = &self.levels[id.level as usize][id.slot as usize];
        debug_assert_ne!(e.state, SlotState::Free, "read of freed slot");
        e.rec
    }

    /// Mark a pending node as expanded (popped from the list).
    pub fn mark_expanded(&mut self, id: NodeId) {
        let e = &mut self.levels[id.level as usize][id.slot as usize];
        debug_assert_eq!(e.state, SlotState::Pending, "double expansion");
        e.state = SlotState::Expanded;
    }

    /// Release a node whose work is finished: pruned-at-pop, expanded with
    /// no surviving children, or cascaded from the death of its last
    /// child. Frees the slot and propagates to ancestors.
    pub fn release(&mut self, id: NodeId) {
        let mut level = id.level as usize;
        let mut slot = id.slot;
        loop {
            let e = &mut self.levels[level][slot as usize];
            debug_assert_ne!(e.state, SlotState::Free, "double free");
            debug_assert_eq!(e.live_children, 0, "releasing node with live children");
            let parent = e.rec.parent;
            e.state = SlotState::Free;
            self.free[level].push(slot);
            self.live -= 1;
            if level == 0 {
                break;
            }
            let pe = &mut self.levels[level - 1][parent as usize];
            debug_assert!(pe.live_children > 0);
            pe.live_children -= 1;
            if pe.live_children == 0 && pe.state == SlotState::Expanded {
                level -= 1;
                slot = parent;
            } else {
                break;
            }
        }
    }

    /// Reconstruct the symbol path root→node (depth order): this is the
    /// parent walk the prefetch unit performs to assemble the tree-state
    /// block.
    pub fn path(&self, id: NodeId) -> Vec<usize> {
        let mut rev = Vec::with_capacity(id.level as usize + 1);
        let mut level = id.level as usize;
        let mut slot = id.slot;
        loop {
            let e = &self.levels[level][slot as usize];
            debug_assert_ne!(e.state, SlotState::Free, "path through freed slot");
            rev.push(e.rec.symbol as usize);
            if level == 0 {
                break;
            }
            slot = e.rec.parent;
            level -= 1;
        }
        rev.reverse();
        rev
    }

    /// Live nodes currently stored per level.
    pub fn occupancy(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|bank| bank.iter().filter(|e| e.state != SlotState::Free).count())
            .collect()
    }

    /// Total live nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live nodes are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of simultaneously live nodes — the capacity a
    /// hardware table must provision.
    pub fn peak(&self) -> usize {
        self.peak_live
    }

    /// Per-level high-water marks.
    pub fn peak_per_level(&self) -> &[usize] {
        &self.peak_per_level
    }

    /// Storage bits per record: parent link (32) + symbol (16) + PD (32)
    /// plus the cached tree-state block of `level + 1` complex f32
    /// symbols (Fig. 5's partitioned copy).
    pub fn record_bits(level: usize) -> u64 {
        32 + 16 + 32 + 64 * (level as u64 + 1)
    }

    /// On-chip bits a hardware table provisioned for the observed
    /// per-level peaks would occupy.
    pub fn storage_bits(&self) -> u64 {
        self.peak_per_level
            .iter()
            .enumerate()
            .map(|(level, &peak)| peak as u64 * Self::record_bits(level))
            .sum()
    }

    /// Drop all nodes (new decode), keeping the peak statistics.
    pub fn clear(&mut self) {
        for bank in &mut self.levels {
            bank.clear();
        }
        for f in &mut self.free {
            f.clear();
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_path_reconstruction() {
        let mut mst = MetaStateTable::new(3);
        let a = mst.insert(0, ROOT_PARENT, 2, 1.0);
        mst.mark_expanded(a);
        let b = mst.insert(1, a.slot, 0, 1.5);
        mst.mark_expanded(b);
        let c = mst.insert(2, b.slot, 3, 2.0);
        assert_eq!(mst.path(c), vec![2, 0, 3]);
        assert_eq!(mst.path(b), vec![2, 0]);
        assert_eq!(mst.path(a), vec![2]);
    }

    #[test]
    fn sibling_paths_share_prefix() {
        let mut mst = MetaStateTable::new(2);
        let p = mst.insert(0, ROOT_PARENT, 1, 0.5);
        mst.mark_expanded(p);
        let c1 = mst.insert(1, p.slot, 0, 1.0);
        let c2 = mst.insert(1, p.slot, 3, 2.0);
        assert_eq!(mst.path(c1), vec![1, 0]);
        assert_eq!(mst.path(c2), vec![1, 3]);
    }

    #[test]
    fn release_cascades_to_expanded_ancestors() {
        let mut mst = MetaStateTable::new(3);
        let a = mst.insert(0, ROOT_PARENT, 0, 0.0);
        mst.mark_expanded(a);
        let b = mst.insert(1, a.slot, 1, 1.0);
        mst.mark_expanded(b);
        let c = mst.insert(2, b.slot, 2, 2.0);
        mst.mark_expanded(c);
        assert_eq!(mst.len(), 3);
        // Freeing the leaf must cascade through b to a.
        mst.release(c);
        assert!(mst.is_empty(), "cascade should free the whole chain");
        assert_eq!(mst.peak(), 3);
    }

    #[test]
    fn pending_sibling_blocks_cascade() {
        let mut mst = MetaStateTable::new(2);
        let a = mst.insert(0, ROOT_PARENT, 0, 0.0);
        mst.mark_expanded(a);
        let b1 = mst.insert(1, a.slot, 1, 1.0);
        let b2 = mst.insert(1, a.slot, 2, 2.0);
        mst.mark_expanded(b1);
        mst.release(b1);
        // b2 still pending: a must stay alive.
        assert_eq!(mst.len(), 2);
        assert_eq!(mst.path(b2), vec![0, 2]);
        mst.mark_expanded(b2);
        mst.release(b2);
        assert!(mst.is_empty());
    }

    #[test]
    fn slots_are_recycled() {
        let mut mst = MetaStateTable::new(1);
        let a = mst.insert(0, ROOT_PARENT, 0, 0.0);
        mst.mark_expanded(a);
        mst.release(a);
        let b = mst.insert(0, ROOT_PARENT, 1, 1.0);
        assert_eq!(b.slot, a.slot, "freed slot must be reused");
        assert_eq!(mst.peak(), 1, "recycling keeps the table small");
    }

    #[test]
    fn occupancy_and_peaks_track_live_set() {
        let mut mst = MetaStateTable::new(2);
        let p = mst.insert(0, ROOT_PARENT, 0, 0.0);
        mst.mark_expanded(p);
        for s in 0..4 {
            mst.insert(1, p.slot, s, s as f32);
        }
        assert_eq!(mst.occupancy(), vec![1, 4]);
        assert_eq!(mst.len(), 5);
        assert_eq!(mst.peak(), 5);
        assert_eq!(mst.peak_per_level(), &[1, 4]);
        mst.clear();
        assert!(mst.is_empty());
        assert_eq!(mst.peak(), 5, "peak survives clear");
    }

    #[test]
    fn record_bits_grow_with_level() {
        assert!(MetaStateTable::record_bits(5) > MetaStateTable::record_bits(0));
        assert_eq!(MetaStateTable::record_bits(0), 80 + 64);
    }

    #[test]
    fn storage_bits_use_per_level_peaks() {
        let mut mst = MetaStateTable::new(2);
        let p = mst.insert(0, ROOT_PARENT, 0, 0.0);
        mst.mark_expanded(p);
        mst.insert(1, p.slot, 1, 1.0);
        let expected = MetaStateTable::record_bits(0) + MetaStateTable::record_bits(1);
        assert_eq!(mst.storage_bits(), expected);
    }

    #[test]
    fn pd_values_stored() {
        let mut mst = MetaStateTable::new(1);
        let id = mst.insert(0, ROOT_PARENT, 3, 7.25);
        assert_eq!(mst.get(id).pd, 7.25);
        assert_eq!(mst.get(id).symbol, 3);
    }
}
