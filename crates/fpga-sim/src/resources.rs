//! Post-route resource model (Table I).
//!
//! Area cannot be *computed* without running Vivado, so this model is
//! anchored to the paper's published post-route utilization (Table I,
//! 10×10 MIMO) and interpolates linearly in the modulation order `P`
//! within each design variant — the structural driver the paper
//! identifies (Sec. IV-E: the tree-state machinery scales with the
//! modulation, the control logic is variant-specific). Antenna count adds
//! a secondary memory term (MST and buffers grow with `N`).
//!
//! The model reproduces Table I at the paper's four design points by
//! construction and extrapolates to other configurations (e.g. it
//! predicts that a 64-QAM optimized design would exhaust URAM — matching
//! the paper's "supports up to 16-QAM" scope).

use crate::config::{FpgaConfig, Variant};
use crate::device::DeviceModel;
use serde::{Deserialize, Serialize};

/// Utilization of one synthesized design, as fractions of the device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Look-up-table fraction (0–1).
    pub luts: f64,
    /// Flip-flop fraction.
    pub ffs: f64,
    /// DSP-slice fraction.
    pub dsps: f64,
    /// BRAM fraction.
    pub brams: f64,
    /// URAM fraction.
    pub urams: f64,
    /// Post-route clock in MHz.
    pub freq_mhz: f64,
}

impl ResourceUsage {
    /// The paper's criterion for instantiating a second pipeline
    /// (Sec. III-C4): every resource under 50 %.
    pub fn fits_second_pipeline(&self) -> bool {
        self.luts < 0.5 && self.ffs < 0.5 && self.dsps < 0.5 && self.brams < 0.5 && self.urams < 0.5
    }

    /// `true` when the design fits the device at all.
    pub fn fits_device(&self) -> bool {
        self.luts <= 1.0
            && self.ffs <= 1.0
            && self.dsps <= 1.0
            && self.brams <= 1.0
            && self.urams <= 1.0
    }

    /// Absolute resource counts on a device.
    pub fn absolute(&self, device: &DeviceModel) -> (u64, u64, u64, u64, u64) {
        (
            (self.luts * device.luts as f64) as u64,
            (self.ffs * device.ffs as f64) as u64,
            (self.dsps * device.dsps as f64) as u64,
            (self.brams * device.bram18 as f64) as u64,
            (self.urams * device.urams as f64) as u64,
        )
    }
}

/// Linear-in-P anchor: `value = a + b·P` fitted through the paper's 4-QAM
/// and 16-QAM points for one (variant, resource) pair.
fn anchor(p4: f64, p16: f64, p: f64) -> f64 {
    let b = (p16 - p4) / 12.0;
    let a = p4 - 4.0 * b;
    (a + b * p).max(0.0)
}

/// Estimate utilization of one configuration (fractions of the U280).
pub fn estimate_resources(config: &FpgaConfig) -> ResourceUsage {
    let p = config.modulation.order() as f64;
    // Secondary antenna-count term: on-chip buffers (MST banks, R block,
    // double buffers) scale with N relative to the paper's N = 10 anchor.
    let n_scale = config.n_tx as f64 / 10.0;

    let (luts, ffs, dsps, brams, urams) = match config.variant {
        // Table I baseline column: 4-QAM / 16-QAM.
        Variant::Baseline => (
            anchor(0.29, 0.50, p),
            anchor(0.20, 0.27, p),
            anchor(0.08, 0.15, p),
            anchor(0.11, 0.14, p) * (0.5 + 0.5 * n_scale),
            anchor(0.14, 0.60, p) * (0.3 + 0.7 * n_scale),
        ),
        // Table I optimized column.
        Variant::Optimized => (
            anchor(0.11, 0.23, p),
            anchor(0.07, 0.11, p),
            anchor(0.03, 0.07, p),
            anchor(0.08, 0.10, p) * (0.5 + 0.5 * n_scale),
            anchor(0.07, 0.30, p) * (0.3 + 0.7 * n_scale),
        ),
    };
    ResourceUsage {
        luts,
        ffs,
        dsps,
        brams,
        urams,
        freq_mhz: config.freq_mhz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_wireless::Modulation;

    fn pct(x: f64) -> f64 {
        (x * 100.0).round()
    }

    #[test]
    fn reproduces_table_1_exactly_at_anchors() {
        // Table I, 10×10 designs.
        let b4 = estimate_resources(&FpgaConfig::baseline(Modulation::Qam4, 10));
        assert_eq!(
            (
                pct(b4.luts),
                pct(b4.ffs),
                pct(b4.dsps),
                pct(b4.brams),
                pct(b4.urams)
            ),
            (29.0, 20.0, 8.0, 11.0, 14.0)
        );
        let b16 = estimate_resources(&FpgaConfig::baseline(Modulation::Qam16, 10));
        assert_eq!(
            (
                pct(b16.luts),
                pct(b16.ffs),
                pct(b16.dsps),
                pct(b16.brams),
                pct(b16.urams)
            ),
            (50.0, 27.0, 15.0, 14.0, 60.0)
        );
        let o4 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam4, 10));
        assert_eq!(
            (
                pct(o4.luts),
                pct(o4.ffs),
                pct(o4.dsps),
                pct(o4.brams),
                pct(o4.urams)
            ),
            (11.0, 7.0, 3.0, 8.0, 7.0)
        );
        let o16 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam16, 10));
        assert_eq!(
            (
                pct(o16.luts),
                pct(o16.ffs),
                pct(o16.dsps),
                pct(o16.brams),
                pct(o16.urams)
            ),
            (23.0, 11.0, 7.0, 10.0, 30.0)
        );
    }

    #[test]
    fn optimized_always_smaller_than_baseline() {
        for m in [Modulation::Qam4, Modulation::Qam16] {
            let b = estimate_resources(&FpgaConfig::baseline(m, 10));
            let o = estimate_resources(&FpgaConfig::optimized(m, 10));
            assert!(o.luts < b.luts && o.ffs < b.ffs && o.dsps < b.dsps);
            assert!(o.brams < b.brams && o.urams < b.urams);
        }
    }

    #[test]
    fn second_pipeline_criterion() {
        // Sec. IV-B: the baseline's LUT/URAM usage blocks a second
        // pipeline at 16-QAM; the optimized design allows it everywhere.
        assert!(
            !estimate_resources(&FpgaConfig::baseline(Modulation::Qam16, 10))
                .fits_second_pipeline()
        );
        assert!(
            estimate_resources(&FpgaConfig::optimized(Modulation::Qam4, 10)).fits_second_pipeline()
        );
        assert!(
            estimate_resources(&FpgaConfig::optimized(Modulation::Qam16, 10))
                .fits_second_pipeline()
        );
    }

    #[test]
    fn predicts_64qam_exhausts_uram() {
        // The paper supports "up to 16-QAM"; the model explains why.
        let o64 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam64, 10));
        assert!(
            o64.urams > 1.0,
            "64-QAM URAM {} should exceed device",
            o64.urams
        );
        assert!(!o64.fits_device());
    }

    #[test]
    fn memory_grows_with_antenna_count() {
        let n10 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam4, 10));
        let n20 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam4, 20));
        assert!(n20.urams > n10.urams);
        assert!(n20.brams > n10.brams);
        // Logic is modulation-driven, not antenna-driven.
        assert_eq!(n20.luts, n10.luts);
    }

    #[test]
    fn absolute_counts_on_u280() {
        let o4 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam4, 10));
        let (luts, _, dsps, _, urams) = o4.absolute(&DeviceModel::alveo_u280());
        assert!((140_000..=145_000).contains(&luts), "11% of 1.3M LUTs");
        assert!((260..=280).contains(&dsps), "3% of 9024 DSPs");
        assert!((65..=70).contains(&urams), "7% of 960 URAMs");
    }
}
