//! Bitonic sorting network model (pruning phase, Sec. III-A3).
//!
//! The paper sorts the `P` freshly evaluated children by PD before
//! inserting them in the tree list (Fig. 3). In hardware this is a
//! pipelined bitonic network: `log₂P · (log₂P + 1) / 2` compare-exchange
//! stages, one cycle each once filled. The model sorts functionally and
//! charges the network latency; it also reports the comparator count for
//! the resource model.

use serde::{Deserialize, Serialize};

/// A `P`-input bitonic sorting network (P padded to a power of two).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitonicSorter {
    /// Number of inputs the network is built for.
    pub inputs: usize,
}

impl BitonicSorter {
    /// Network for `inputs` elements.
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "sorter needs at least one input");
        BitonicSorter { inputs }
    }

    /// Padded power-of-two width.
    pub fn width(&self) -> usize {
        self.inputs.next_power_of_two()
    }

    /// Compare-exchange stages: `k(k+1)/2` for width `2^k`.
    pub fn stages(&self) -> u64 {
        let k = self.width().trailing_zeros() as u64;
        k * (k + 1) / 2
    }

    /// Comparators in the full network: `stages · width / 2`.
    pub fn comparators(&self) -> u64 {
        self.stages() * self.width() as u64 / 2
    }

    /// Latency in cycles for one batch of `inputs` values (pipeline fill =
    /// stages, then the batch drains at II = 1).
    pub fn cycles(&self) -> u64 {
        self.stages() + 2
    }

    /// Functionally sort `(key, payload)` pairs ascending by key, exactly
    /// as the hardware network would (ties keep index order).
    pub fn sort<K: PartialOrd + Copy, V: Copy>(&self, items: &mut [(K, V)]) {
        assert!(
            items.len() <= self.width(),
            "batch of {} exceeds network width {}",
            items.len(),
            self.width()
        );
        items.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN sort keys"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_for_paper_modulations() {
        // 4-QAM: width 4 → 3 stages; 16-QAM: width 16 → 10 stages.
        assert_eq!(BitonicSorter::new(4).stages(), 3);
        assert_eq!(BitonicSorter::new(16).stages(), 10);
        assert_eq!(BitonicSorter::new(64).stages(), 21);
    }

    #[test]
    fn non_power_of_two_pads_up() {
        let s = BitonicSorter::new(6);
        assert_eq!(s.width(), 8);
        assert_eq!(s.stages(), 6);
    }

    #[test]
    fn comparator_counts() {
        assert_eq!(BitonicSorter::new(4).comparators(), 6);
        assert_eq!(BitonicSorter::new(16).comparators(), 80);
    }

    #[test]
    fn sorts_correctly() {
        let s = BitonicSorter::new(4);
        let mut v = vec![(3.0f32, 'a'), (1.0, 'b'), (2.0, 'c'), (1.5, 'd')];
        s.sort(&mut v);
        let order: Vec<char> = v.iter().map(|&(_, c)| c).collect();
        assert_eq!(order, vec!['b', 'd', 'c', 'a']);
    }

    #[test]
    fn latency_grows_with_width() {
        assert!(BitonicSorter::new(16).cycles() > BitonicSorter::new(4).cycles());
    }

    #[test]
    #[should_panic(expected = "exceeds network width")]
    fn oversized_batch_rejected() {
        let s = BitonicSorter::new(4);
        let mut v = vec![(0.0f32, 0u8); 5];
        s.sort(&mut v);
    }
}
