//! Power and energy models (Table II).
//!
//! The paper profiles the FPGA kernel with Vitis Analyzer and the CPU
//! package with AMD-uProf. Neither tool exists here, so both are replaced
//! by activity-based analytical models *calibrated to Table II's measured
//! operating points* (the documented substitution):
//!
//! * **FPGA kernel**: static/shell floor plus dynamic terms proportional
//!   to the utilization fractions of the resource model and to the
//!   antenna count (memory-traffic activity). Reproduces Table II's
//!   8–12.8 W within ±20 %.
//! * **CPU package**: idle/uncore floor plus per-engaged-core dynamic
//!   power plus a working-set (memory traffic) term. Reproduces Table
//!   II's 82–142 W within ±15 %.

use crate::resources::ResourceUsage;
use serde::{Deserialize, Serialize};

/// Vitis-Analyzer-style kernel power model for the U280 accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FpgaPowerModel {
    /// Static + shell + HBM idle floor (W).
    pub static_w: f64,
    /// Dynamic W per unit LUT fraction.
    pub per_lut_frac: f64,
    /// Dynamic W per unit DSP fraction.
    pub per_dsp_frac: f64,
    /// Dynamic W per unit (BRAM+URAM) fraction.
    pub per_mem_frac: f64,
    /// Activity W per 10 antennas (tree-state traffic).
    pub per_10_antennas: f64,
}

impl FpgaPowerModel {
    /// Coefficients calibrated to Table II (see module docs).
    pub fn u280_kernel() -> Self {
        FpgaPowerModel {
            static_w: 1.2,
            per_lut_frac: 20.0,
            per_dsp_frac: 10.0,
            per_mem_frac: 10.0,
            per_10_antennas: 3.0,
        }
    }

    /// Kernel power for a synthesized design decoding an `n_tx`-antenna
    /// system.
    pub fn power_watts(&self, usage: &ResourceUsage, n_tx: usize) -> f64 {
        self.static_w
            + self.per_lut_frac * usage.luts
            + self.per_dsp_frac * usage.dsps
            + self.per_mem_frac * (usage.brams + usage.urams)
            + self.per_10_antennas * n_tx as f64 / 10.0
    }
}

/// Package power model for the paper's 64-core CPU host.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    /// Idle + uncore floor (W).
    pub idle_w: f64,
    /// Dynamic W per engaged core.
    pub per_core_w: f64,
    /// Working-set W at the 10-antenna reference (scales with `(M/10)²`,
    /// the tree-state matrix footprint of Sec. IV-E).
    pub memory_w: f64,
    /// Physical cores available.
    pub cores: usize,
}

impl CpuPowerModel {
    /// Coefficients calibrated to Table II's AMD-uProf measurements.
    pub fn ryzen_64core() -> Self {
        CpuPowerModel {
            idle_w: 52.0,
            per_core_w: 1.1,
            memory_w: 8.0,
            cores: 64,
        }
    }

    /// Cores the threaded GEMM engages for an `M`-antenna, order-`P`
    /// decode (one worker per child-evaluation strip, capped by the
    /// machine).
    pub fn engaged_cores(&self, n_tx: usize, order: usize) -> usize {
        (n_tx * order / 2).clamp(1, self.cores)
    }

    /// Package power during decoding.
    pub fn power_watts(&self, n_tx: usize, order: usize) -> f64 {
        let m = n_tx as f64 / 10.0;
        self.idle_w
            + self.per_core_w * self.engaged_cores(n_tx, order) as f64
            + self.memory_w * m * m
    }
}

/// Energy in joules of a phase at `power_watts` lasting `seconds`.
pub fn energy_joules(power_watts: f64, seconds: f64) -> f64 {
    assert!(power_watts >= 0.0 && seconds >= 0.0);
    power_watts * seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FpgaConfig;
    use crate::resources::estimate_resources;
    use sd_wireless::Modulation;

    fn within(measured: f64, target: f64, tol: f64) -> bool {
        (measured - target).abs() <= tol * target
    }

    #[test]
    fn fpga_power_matches_table_2_within_20_percent() {
        let model = FpgaPowerModel::u280_kernel();
        let cases = [
            (Modulation::Qam4, 10usize, 8.0),
            (Modulation::Qam4, 15, 11.7),
            (Modulation::Qam4, 20, 12.0),
            (Modulation::Qam16, 10, 12.8),
        ];
        for (m, n, target) in cases {
            let usage = estimate_resources(&FpgaConfig::optimized(m, n));
            let p = model.power_watts(&usage, n);
            assert!(
                within(p, target, 0.20),
                "{m} {n}x{n}: modeled {p:.1} W vs paper {target} W"
            );
        }
    }

    #[test]
    fn cpu_power_matches_table_2_within_15_percent() {
        let model = CpuPowerModel::ryzen_64core();
        let cases = [
            (10usize, 4usize, 82.0),
            (15, 4, 93.0),
            (20, 4, 135.0),
            (10, 16, 142.0),
        ];
        for (n, p_mod, target) in cases {
            let p = model.power_watts(n, p_mod);
            assert!(
                within(p, target, 0.15),
                "{n}x{n} P={p_mod}: modeled {p:.1} W vs paper {target} W"
            );
        }
    }

    #[test]
    fn fpga_far_below_cpu_power() {
        // The core Table II message: order-of-magnitude power gap.
        let fpga = FpgaPowerModel::u280_kernel();
        let cpu = CpuPowerModel::ryzen_64core();
        for (m, p_mod, n) in [
            (Modulation::Qam4, 4usize, 10usize),
            (Modulation::Qam16, 16, 10),
            (Modulation::Qam4, 4, 20),
        ] {
            let usage = estimate_resources(&FpgaConfig::optimized(m, n));
            let pf = fpga.power_watts(&usage, n);
            let pc = cpu.power_watts(n, p_mod);
            assert!(pc / pf > 5.0, "power ratio {:.1} too small", pc / pf);
        }
    }

    #[test]
    fn engaged_cores_saturate() {
        let cpu = CpuPowerModel::ryzen_64core();
        assert_eq!(cpu.engaged_cores(10, 4), 20);
        assert_eq!(cpu.engaged_cores(10, 16), 64, "capped at 64");
        assert_eq!(cpu.engaged_cores(1, 2), 1, "at least one core");
    }

    #[test]
    fn energy_is_power_times_time() {
        assert_eq!(energy_joules(10.0, 0.5), 5.0);
        assert_eq!(energy_joules(0.0, 100.0), 0.0);
    }

    #[test]
    fn energy_reduction_factor_in_paper_range() {
        // Combine Table II power with Table II execution times: the
        // modeled powers must yield energy reductions near the paper's
        // 35.8–41.8×.
        let fpga = FpgaPowerModel::u280_kernel();
        let cpu = CpuPowerModel::ryzen_64core();
        let cases: [(Modulation, usize, usize, f64, f64, f64); 4] = [
            (Modulation::Qam4, 4, 10, 7.0e-3, 2.0e-3, 35.8),
            (Modulation::Qam4, 4, 15, 44.3e-3, 9.4e-3, 36.8),
            (Modulation::Qam4, 4, 20, 350.6e-3, 102.5e-3, 38.4),
            (Modulation::Qam16, 16, 10, 176.6e-3, 46.88e-3, 41.8),
        ];
        for (m, p_mod, n, t_cpu, t_fpga, paper_factor) in cases {
            let usage = estimate_resources(&FpgaConfig::optimized(m, n));
            let e_fpga = energy_joules(fpga.power_watts(&usage, n), t_fpga);
            let e_cpu = energy_joules(cpu.power_watts(n, p_mod), t_cpu);
            let factor = e_cpu / e_fpga;
            assert!(
                within(factor, paper_factor, 0.35),
                "{m} {n}x{n}: energy reduction {factor:.1}× vs paper {paper_factor}×"
            );
        }
    }

    #[test]
    #[should_panic]
    fn negative_energy_rejected() {
        energy_joules(-1.0, 1.0);
    }
}
