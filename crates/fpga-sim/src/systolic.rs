//! Systolic-array GEMM engine model (Sec. III-C1).
//!
//! The paper isolates the GEMM engine from the Xilinx Vitis BLAS library:
//! a 2-D mesh of floating-point complex MAC units fed from single-cycle
//! BRAM, pipelined so that, once filled, one column of results drains per
//! cycle. The model charges
//!
//! ```text
//! cycles(m, k, n) = fill + tiles · (k + drain)
//! ```
//!
//! where `fill = rows + cols + MAC latency` is the wavefront fill, each
//! tile streams the `k` reduction dimension at II = 1, and
//! `tiles = ⌈m/rows⌉ · ⌈n/cols⌉`.

use serde::{Deserialize, Serialize};

/// Pipeline latency of one fused complex MAC built from DSP slices.
pub const CMAC_LATENCY: u64 = 8;

/// DSP slices per complex single-precision MAC (4 real multiplies + adds,
/// ~2.5 DSP each on UltraScale+).
pub const DSP_PER_CMAC: u64 = 10;

/// A `rows × cols` systolic mesh of complex MAC units.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicGemm {
    /// Mesh height (parallel output rows).
    pub rows: usize,
    /// Mesh width (parallel output columns).
    pub cols: usize,
}

impl SystolicGemm {
    /// Build an engine of the given geometry.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh must be non-empty");
        SystolicGemm { rows, cols }
    }

    /// Wavefront fill latency.
    pub fn fill_cycles(&self) -> u64 {
        self.rows as u64 + self.cols as u64 + CMAC_LATENCY
    }

    /// Cycles to compute an `m × k · k × n` complex GEMM.
    pub fn cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles = m.div_ceil(self.rows) as u64 * n.div_ceil(self.cols) as u64;
        // Each tile streams k reduction steps; drain of the last partials
        // costs the MAC latency.
        self.fill_cycles() + tiles * (k as u64 + CMAC_LATENCY / 2)
    }

    /// DSP slices consumed by the mesh.
    pub fn dsp_count(&self) -> u64 {
        (self.rows * self.cols) as u64 * DSP_PER_CMAC
    }

    /// Peak complex MACs per cycle.
    pub fn peak_cmacs_per_cycle(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Sustained efficiency for a given problem: useful MACs divided by
    /// (cycles × peak).
    pub fn efficiency(&self, m: usize, k: usize, n: usize) -> f64 {
        let useful = (m * k * n) as f64;
        let cap = (self.cycles(m, k, n) * self.peak_cmacs_per_cycle()) as f64;
        if cap == 0.0 {
            0.0
        } else {
            useful / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_is_free() {
        let e = SystolicGemm::new(4, 4);
        assert_eq!(e.cycles(0, 5, 5), 0);
        assert_eq!(e.cycles(5, 0, 5), 0);
    }

    #[test]
    fn single_tile_cost_is_fill_plus_k() {
        let e = SystolicGemm::new(4, 4);
        let c = e.cycles(4, 10, 4);
        assert_eq!(c, e.fill_cycles() + 10 + CMAC_LATENCY / 2);
    }

    #[test]
    fn tiles_scale_linearly() {
        let e = SystolicGemm::new(4, 4);
        let one = e.cycles(4, 8, 4) - e.fill_cycles();
        let four = e.cycles(8, 8, 8) - e.fill_cycles();
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn bigger_mesh_is_faster_but_hungrier() {
        let small = SystolicGemm::new(4, 4);
        let big = SystolicGemm::new(16, 16);
        assert!(big.cycles(64, 64, 64) < small.cycles(64, 64, 64));
        assert!(big.dsp_count() > small.dsp_count());
        assert_eq!(big.dsp_count(), 256 * DSP_PER_CMAC);
    }

    #[test]
    fn efficiency_improves_with_larger_k() {
        let e = SystolicGemm::new(4, 4);
        assert!(e.efficiency(4, 64, 4) > e.efficiency(4, 4, 4));
        let eff = e.efficiency(4, 4096, 4);
        assert!(eff > 0.9, "long-k efficiency {eff} should approach 1");
    }

    #[test]
    fn ceil_division_covers_ragged_edges() {
        let e = SystolicGemm::new(4, 4);
        // 5 columns needs 2 column tiles, same as 8.
        assert_eq!(e.cycles(4, 10, 5), e.cycles(4, 10, 8));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mesh_rejected() {
        SystolicGemm::new(0, 1);
    }
}
