//! # sd-fpga
//!
//! Cycle-approximate architectural simulator of the paper's FPGA sphere
//! decoder on a Xilinx Alveo U280 (Sec. III).
//!
//! We have no U280, so — per the substitution rule — the accelerator is
//! rebuilt as an *executable model*: the pipeline **runs the real
//! algorithm** (its symbol decisions are bit-identical to the `sd-core`
//! sorted-DFS decoder in `f32`) while charging cycles to each hardware
//! stage of Fig. 4:
//!
//! * [`systolic`] — the optimized GEMM engine (DSP MAC mesh, fill/drain,
//!   initiation interval),
//! * [`prefetch`] — the address-generation / double-buffering unit that
//!   hides irregular memory latency,
//! * [`mst`] — the Meta State Table: per-level node banks that replace
//!   pointer chasing (Fig. 5),
//! * [`sort_unit`] — the bitonic network performing the per-level sorted
//!   insertion (Fig. 3),
//! * [`pipeline`] — the complete decoder: LIFO traversal over the MST with
//!   per-expansion stage accounting, in the *baseline* (direct HLS port,
//!   253 MHz, sequential stages) and *optimized* (300 MHz, dataflow
//!   overlap, prefetching) variants of Table I,
//! * [`resources`] — the Table I area model (anchored to the paper's
//!   post-route results, interpolating across modulations and variants),
//! * [`power`] — the Table II power/energy model for the FPGA kernel and
//!   the multi-core CPU reference.
//!
//! Decode time is `cycles / f_clk`; its SNR dependence comes from the real
//! explored-node counts, exactly as on hardware.

#![warn(missing_docs)]
#![warn(clippy::all)]
// `!(a < b)` is used deliberately as the NaN-robust form of `a >= b` in
// the pruning hot paths.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod device;
pub mod mst;
pub mod multi_pipeline;
pub mod pipeline;
pub mod power;
pub mod prefetch;
pub mod resources;
pub mod sort_unit;
pub mod systolic;

pub use config::{FpgaConfig, Variant};
pub use device::DeviceModel;
pub use mst::MetaStateTable;
pub use multi_pipeline::{BatchReport, MultiPipeline};
pub use pipeline::{CycleBreakdown, FpgaDecodeReport, FpgaSphereDecoder};
pub use power::{energy_joules, CpuPowerModel, FpgaPowerModel};
pub use resources::{estimate_resources, ResourceUsage};
pub use sort_unit::BitonicSorter;
pub use systolic::SystolicGemm;
