//! Pre-fetching / double-buffering unit model (Sec. III-C2).
//!
//! The GEMM engine's inputs (the `R` row block and the tree-state block of
//! the node being expanded) live in large partitioned memories; which
//! block is needed depends on the node popped from the list, so the access
//! pattern is irregular. The optimized design pre-computes the addresses
//! from (level, node) and stages the data into a double buffer so the
//! fetch of expansion *i+1* overlaps the compute of expansion *i*; the
//! baseline pays the full access latency inline.

use serde::{Deserialize, Serialize};

/// Single-cycle BRAM access (the partitioned on-chip banks).
pub const BRAM_ACCESS_CYCLES: u64 = 1;

/// Un-prefetched irregular access penalty per block (bank conflicts,
/// address decode, URAM latency) charged by the baseline design.
pub const IRREGULAR_ACCESS_PENALTY: u64 = 24;

/// Address-generation latency (level/node → bank, offset).
pub const ADDR_GEN_CYCLES: u64 = 4;

/// Prefetch behaviour of one design variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchUnit {
    /// `true` in the optimized design.
    pub double_buffered: bool,
}

impl PrefetchUnit {
    /// The optimized double-buffered unit.
    pub fn enabled() -> Self {
        PrefetchUnit {
            double_buffered: true,
        }
    }

    /// The baseline inline-access behaviour.
    pub fn disabled() -> Self {
        PrefetchUnit {
            double_buffered: false,
        }
    }

    /// Raw cycles to stage `words` 64-bit words for one expansion.
    pub fn fetch_cycles(&self, words: usize) -> u64 {
        let stream = words as u64 * BRAM_ACCESS_CYCLES;
        if self.double_buffered {
            ADDR_GEN_CYCLES + stream
        } else {
            ADDR_GEN_CYCLES + stream + IRREGULAR_ACCESS_PENALTY
        }
    }

    /// Cycles that remain *visible* on the critical path when the fetch
    /// can overlap a compute phase of `compute_cycles` (double buffering
    /// hides `min(fetch, compute)`).
    pub fn exposed_cycles(&self, words: usize, compute_cycles: u64) -> u64 {
        let fetch = self.fetch_cycles(words);
        if self.double_buffered {
            fetch.saturating_sub(compute_cycles)
        } else {
            fetch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pays_irregular_penalty() {
        let pf = PrefetchUnit::disabled();
        let opt = PrefetchUnit::enabled();
        assert_eq!(
            pf.fetch_cycles(10) - opt.fetch_cycles(10),
            IRREGULAR_ACCESS_PENALTY
        );
    }

    #[test]
    fn double_buffer_hides_fetch_under_compute() {
        let opt = PrefetchUnit::enabled();
        let fetch = opt.fetch_cycles(12);
        assert_eq!(opt.exposed_cycles(12, fetch + 10), 0, "fully hidden");
        assert_eq!(opt.exposed_cycles(12, fetch - 5), 5, "partially hidden");
    }

    #[test]
    fn baseline_never_hides() {
        let b = PrefetchUnit::disabled();
        assert_eq!(b.exposed_cycles(12, 1_000_000), b.fetch_cycles(12));
    }

    #[test]
    fn zero_words_costs_only_address_generation() {
        assert_eq!(PrefetchUnit::enabled().fetch_cycles(0), ADDR_GEN_CYCLES);
    }
}
