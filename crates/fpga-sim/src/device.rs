//! FPGA device descriptions.

use serde::{Deserialize, Serialize};

/// Static resource inventory of an FPGA accelerator card.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Marketing name.
    pub name: &'static str,
    /// 6-input look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48/DSP58 slices.
    pub dsps: u64,
    /// 18 Kb block-RAM units.
    pub bram18: u64,
    /// 288 Kb UltraRAM units.
    pub urams: u64,
    /// HBM capacity in bytes (0 if none).
    pub hbm_bytes: u64,
    /// Aggregate HBM bandwidth, bytes/second.
    pub hbm_bandwidth: u64,
    /// Host link (PCIe) bandwidth, bytes/second.
    pub pcie_bandwidth: u64,
}

impl DeviceModel {
    /// The Xilinx Alveo U280 used by the paper (Sec. IV-A): 8 GB HBM over
    /// 32 channels, 4032 × 18 Kb BRAM, 960 × 288 Kb URAM.
    pub fn alveo_u280() -> Self {
        DeviceModel {
            name: "Xilinx Alveo U280",
            luts: 1_303_680,
            ffs: 2_607_360,
            dsps: 9_024,
            bram18: 4_032,
            urams: 960,
            hbm_bytes: 8 << 30,
            hbm_bandwidth: 460_000_000_000,
            pcie_bandwidth: 16_000_000_000,
        }
    }

    /// Total on-chip SRAM bits (BRAM + URAM).
    pub fn onchip_bits(&self) -> u64 {
        self.bram18 * 18 * 1024 + self.urams * 288 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_matches_paper_quoted_numbers() {
        let d = DeviceModel::alveo_u280();
        assert_eq!(d.bram18, 4032, "paper: 4032 BRAMs of 18Kb");
        assert_eq!(d.urams, 960, "paper: 960 URAM blocks of 288Kb");
        assert_eq!(d.hbm_bytes, 8 << 30, "paper: 8GB HBM");
    }

    #[test]
    fn onchip_memory_is_tens_of_megabytes() {
        let d = DeviceModel::alveo_u280();
        let mib = d.onchip_bits() / 8 / (1 << 20);
        assert!((30..60).contains(&mib), "U280 on-chip ≈ 43 MiB, got {mib}");
    }
}
