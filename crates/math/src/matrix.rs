//! Dense row-major complex matrices.
//!
//! The layout is deliberately simple (one contiguous `Vec`, row-major) so
//! the GEMM kernels in [`mod@crate::gemm`] control cache behaviour explicitly,
//! mirroring how the FPGA design streams tree-state blocks through BRAM.

use crate::complex::Complex;
use crate::float::Float;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` complex matrix in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<Complex<F>>,
}

impl<F: Float> Matrix<F> {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::zero(); rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::one();
        }
        m
    }

    /// Build each entry from a closure `(row, col) -> value`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Complex<F>,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex<F>>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Reshape to `rows × cols`, zero-filling every entry. The backing
    /// buffer is reused, so once a scratch matrix has seen its largest
    /// shape, later `resize` calls never touch the allocator — the
    /// property the decoder's steady-state expansion loop relies on.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex::zero());
    }

    /// Reshape to `rows × cols` *without* zeroing the retained prefix —
    /// only entries past the old length start zeroed. For scratch
    /// operands whose every entry is rewritten before being read (the
    /// batched expansion's tree-state matrix), this skips [`resize`]'s
    /// full zero-fill pass, which would otherwise rewrite the entire
    /// buffer on every expansion.
    ///
    /// [`resize`]: Matrix::resize
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if self.data.len() > len {
            self.data.truncate(len);
        } else if self.data.len() < len {
            self.data.resize(len, Complex::zero());
        }
    }

    /// Build from rows of `f64` pairs — convenient in tests.
    pub fn from_rows_f64(rows: &[Vec<(f64, f64)>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix::from_fn(r, c, |i, j| Complex::from_f64(rows[i][j].0, rows[i][j].1))
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for a 0×0, 0×n or n×0 matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex<F>] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<F>] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[Complex<F>] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex<F>] {
        debug_assert!(r < self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copy column `c` into a vector.
    pub fn col(&self, c: usize) -> Vec<Complex<F>> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Conjugate (Hermitian) transpose `A^H`.
    pub fn hermitian(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose `A^T` (no conjugation).
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(Complex<F>) -> Complex<F>) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Lossy element-wise precision cast (used by the FP16 ablation).
    pub fn cast<G: Float>(&self) -> Matrix<G> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x.cast()).collect(),
        }
    }

    /// Extract the sub-matrix `rows r0..r1`, `cols c0..c1` (half-open).
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// If `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex<F>]) -> Vec<Complex<F>> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![Complex::zero(); self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = Complex::zero();
            for (a, b) in row.iter().zip(x.iter()) {
                Complex::mul_acc(&mut acc, *a, *b);
            }
            *yr = acc;
        }
        y
    }

    /// Naive matrix product (reference implementation; the tuned kernels
    /// live in [`mod@crate::gemm`]).
    pub fn mul(&self, rhs: &Self) -> Self {
        crate::gemm::gemm(self, rhs, crate::gemm::GemmAlgo::Naive)
    }

    /// Sum of two matrices.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Difference of two matrices.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Multiply every entry by a real scalar.
    pub fn scale(&self, s: F) -> Self {
        self.map(|x| x.scale(s))
    }

    /// Squared Frobenius norm `Σ|a_ij|²`.
    pub fn frobenius_norm_sqr(&self) -> F {
        let mut acc = F::ZERO;
        for x in &self.data {
            acc += x.norm_sqr();
        }
        acc
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> F {
        self.frobenius_norm_sqr().sqrt()
    }

    /// Largest absolute entry-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Self) -> F {
        assert_eq!(self.shape(), other.shape());
        let mut m = F::ZERO;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            m = m.maximum((*a - *b).abs());
        }
        m
    }

    /// `true` when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: F) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl<F: Float> Index<(usize, usize)> for Matrix<F> {
    type Output = Complex<F>;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Complex<F> {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<F: Float> IndexMut<(usize, usize)> for Matrix<F> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex<F> {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<F: Float> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type M = Matrix<f64>;
    type C = Complex<f64>;

    fn sample() -> M {
        M::from_rows_f64(&[
            vec![(1.0, 0.0), (2.0, 1.0)],
            vec![(0.0, -1.0), (3.0, 0.0)],
            vec![(4.0, 4.0), (-1.0, 0.5)],
        ])
    }

    #[test]
    fn shape_and_index() {
        let m = sample();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(0, 1)], C::new(2.0, 1.0));
        assert_eq!(m[(2, 0)], C::new(4.0, 4.0));
    }

    #[test]
    fn identity_is_neutral_for_mul() {
        let m = sample();
        let i2 = M::identity(2);
        let i3 = M::identity(3);
        assert!(m.mul(&i2).approx_eq(&m, 0.0));
        assert!(i3.mul(&m).approx_eq(&m, 0.0));
    }

    #[test]
    fn hermitian_transpose_conjugates() {
        let m = sample();
        let h = m.hermitian();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(1, 0)], C::new(2.0, -1.0));
        // (A^H)^H = A
        assert!(h.hermitian().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_does_not_conjugate() {
        let m = sample();
        assert_eq!(m.transpose()[(1, 0)], C::new(2.0, 1.0));
    }

    #[test]
    fn mul_vec_matches_mul_with_column() {
        let m = sample();
        let x = vec![C::new(1.0, 1.0), C::new(-2.0, 0.5)];
        let y = m.mul_vec(&x);
        let xm = M::from_vec(2, 1, x.clone());
        let ym = m.mul(&xm);
        for r in 0..3 {
            assert!((y[r] - ym[(r, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn block_extracts_submatrix() {
        let m = sample();
        let b = m.block(1, 3, 0, 1);
        assert_eq!(b.shape(), (2, 1));
        assert_eq!(b[(0, 0)], C::new(0.0, -1.0));
        assert_eq!(b[(1, 0)], C::new(4.0, 4.0));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        let i = M::identity(4);
        assert!((i.frobenius_norm_sqr() - 4.0).abs() < 1e-14);
    }

    #[test]
    fn add_sub_scale() {
        let m = sample();
        let two_m = m.add(&m);
        assert!(two_m.approx_eq(&m.scale(2.0), 1e-14));
        assert!(two_m.sub(&m).approx_eq(&m, 1e-14));
    }

    #[test]
    fn col_copies_column() {
        let m = sample();
        let c1 = m.col(1);
        assert_eq!(
            c1,
            vec![C::new(2.0, 1.0), C::new(3.0, 0.0), C::new(-1.0, 0.5)]
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_panics_on_mismatch() {
        sample().mul_vec(&[C::zero(); 3]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_panics_on_bad_len() {
        M::from_vec(2, 2, vec![C::zero(); 3]);
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let m = sample();
        let mut p = m.clone();
        p[(1, 1)] += C::new(0.5, 0.0);
        assert!((m.max_abs_diff(&p) - 0.5).abs() < 1e-15);
        assert!(!m.approx_eq(&p, 0.4));
        assert!(m.approx_eq(&p, 0.6));
    }
}
