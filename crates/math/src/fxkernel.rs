//! Vectorized fixed-point expansion kernels (the quantized counterpart of
//! `gemm_broadcast_acc_into` + the per-level metric update).
//!
//! The float hot loop evaluates, for every open node `b` and child symbol
//! `c` at tree depth `k`,
//!
//! ```text
//! inc(b, c) = ‖ ŷ_i − Σ_off â[off]·ŝ[off, b] − r̂_ii ⊗ ŝ_c ‖
//! ```
//!
//! The middle sum (the *suffix* term) depends only on the node, and the
//! last product (the *seed*) only on the child — exactly the structure the
//! paper's broadcast-GEMM exploits. The fixed-point kernel splits along
//! the same line:
//!
//! * [`fx_suffix_cmac`] — one complex multiply-accumulate row, vectorized
//!   *across node lanes* on split re/im `i16` planes into `i32`
//!   accumulators;
//! * [`fx_metric_update`] — residual-minus-seed and the ℓ2/ℓ∞ reduction,
//!   vectorized *across child lanes*;
//! * [`fx_expand_level`] — the fused per-level kernel the engines call.
//!
//! All arithmetic is exact in the containers chosen by [`crate::fixed`]
//! (no rounding inside the kernels), so the portable lane-unrolled
//! implementation and the AVX2 implementation behind the
//! `simd-intrinsics` feature are **bit-identical** — pinned by tests, not
//! just intended. Dispatch is a one-time `is_x86_feature_detected`
//! lookup; hosts without AVX2 (or builds without the feature) always take
//! the portable path.

use crate::fixed::MetricKind;

/// Portable lane width. Eight `i32` accumulators match one AVX2 register,
/// so the unrolled portable loop and the intrinsics loop have the same
/// shape (and identical results, since integer ops are exact).
const LANES: usize = 8;

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
fn use_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Accumulate one suffix row term across node lanes:
/// `w[b] += a ⊗ s[b]` for every node `b`, on split re/im planes.
///
/// `a` is one quantized `R` coefficient (Q-scaled `i16`), `s_*` one row of
/// the compressed suffix-symbol planes, `w_*` the per-node `i32` complex
/// accumulators. Exact by the overflow analysis in [`crate::fixed`].
#[inline]
pub fn fx_suffix_cmac(
    a_re: i16,
    a_im: i16,
    s_re: &[i16],
    s_im: &[i16],
    w_re: &mut [i32],
    w_im: &mut [i32],
) {
    let b = w_re.len();
    assert_eq!(w_im.len(), b);
    assert!(s_re.len() >= b && s_im.len() >= b);
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if use_avx2() {
        // SAFETY: AVX2 presence checked at runtime; slice bounds asserted.
        unsafe { avx2::suffix_cmac(a_re, a_im, s_re, s_im, w_re, w_im) };
        return;
    }
    fx_suffix_cmac_portable(a_re, a_im, s_re, s_im, w_re, w_im);
}

/// Portable (lane-unrolled) implementation of [`fx_suffix_cmac`].
#[inline]
pub fn fx_suffix_cmac_portable(
    a_re: i16,
    a_im: i16,
    s_re: &[i16],
    s_im: &[i16],
    w_re: &mut [i32],
    w_im: &mut [i32],
) {
    let b = w_re.len();
    assert_eq!(w_im.len(), b);
    assert!(s_re.len() >= b && s_im.len() >= b);
    let (ar, ai) = (a_re as i32, a_im as i32);
    let mut i = 0;
    while i + LANES <= b {
        // Fixed trip count: the compiler unrolls and auto-vectorizes this.
        for l in 0..LANES {
            let sr = s_re[i + l] as i32;
            let si = s_im[i + l] as i32;
            w_re[i + l] += ar * sr - ai * si;
            w_im[i + l] += ar * si + ai * sr;
        }
        i += LANES;
    }
    while i < b {
        let sr = s_re[i] as i32;
        let si = s_im[i] as i32;
        w_re[i] += ar * sr - ai * si;
        w_im[i] += ar * si + ai * sr;
        i += 1;
    }
}

/// Per-child metric increments for one node: given the node residual
/// `u = ŷ − w` and the per-child seeds `r̂_ii ⊗ ŝ_c`, write
/// `out[c] = reduce(u − seed_c)` where `reduce` is `|·|²` (ℓ2, exact in
/// `i64`) or `max(|Re|, |Im|)` (ℓ∞).
#[inline]
pub fn fx_metric_update(
    u_re: i32,
    u_im: i32,
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    out: &mut [i64],
) {
    let p = out.len();
    assert!(seed_re.len() >= p && seed_im.len() >= p);
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    if use_avx2() {
        // SAFETY: AVX2 presence checked at runtime; slice bounds asserted.
        unsafe { avx2::metric_update(u_re, u_im, seed_re, seed_im, metric, out) };
        return;
    }
    fx_metric_update_portable(u_re, u_im, seed_re, seed_im, metric, out);
}

/// Portable (lane-unrolled) implementation of [`fx_metric_update`].
#[inline]
pub fn fx_metric_update_portable(
    u_re: i32,
    u_im: i32,
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    out: &mut [i64],
) {
    let p = out.len();
    assert!(seed_re.len() >= p && seed_im.len() >= p);
    match metric {
        MetricKind::L2 => {
            for c in 0..p {
                let dr = (u_re - seed_re[c]) as i64;
                let di = (u_im - seed_im[c]) as i64;
                out[c] = dr * dr + di * di;
            }
        }
        MetricKind::LInf => {
            for c in 0..p {
                let dr = (u_re - seed_re[c]).abs() as i64;
                let di = (u_im - seed_im[c]).abs() as i64;
                out[c] = dr.max(di);
            }
        }
    }
}

/// Fused per-level expansion: suffix CMAC over `depth` rows, then the
/// metric update for all `b × p` (node, child) pairs.
///
/// * `a_*` — quantized suffix coefficients of this level's `R` row,
///   deepest ancestor first (`len = depth`);
/// * `s_*` — compressed suffix symbol planes, row-major `depth × b`
///   (row `off`, column `node`), same layout as the float batcher;
/// * `y_*` — this level's quantized received component;
/// * `seed_*` — per-child seeds `r̂_ii ⊗ ŝ_c` (`len ≥ p`);
/// * `w_*` — caller scratch (`len ≥ b`), overwritten;
/// * `out` — `b × p` row-major increments.
#[allow(clippy::too_many_arguments)]
pub fn fx_expand_level(
    a_re: &[i16],
    a_im: &[i16],
    s_re: &[i16],
    s_im: &[i16],
    b: usize,
    y_re: i32,
    y_im: i32,
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    w_re: &mut [i32],
    w_im: &mut [i32],
    out: &mut [i64],
) {
    let depth = a_re.len();
    let p = seed_re.len();
    assert_eq!(a_im.len(), depth);
    assert_eq!(seed_im.len(), p);
    assert!(s_re.len() >= depth * b && s_im.len() >= depth * b);
    assert!(w_re.len() >= b && w_im.len() >= b);
    assert!(out.len() >= b * p);
    w_re[..b].fill(0);
    w_im[..b].fill(0);
    for off in 0..depth {
        let row = off * b;
        fx_suffix_cmac(
            a_re[off],
            a_im[off],
            &s_re[row..row + b],
            &s_im[row..row + b],
            &mut w_re[..b],
            &mut w_im[..b],
        );
    }
    for bi in 0..b {
        let u_re = y_re - w_re[bi];
        let u_im = y_im - w_im[bi];
        fx_metric_update(
            u_re,
            u_im,
            seed_re,
            seed_im,
            metric,
            &mut out[bi * p..(bi + 1) * p],
        );
    }
}

/// Fully-portable variant of [`fx_expand_level`] (never dispatches to
/// intrinsics) — the oracle for the bit-identity tests.
#[allow(clippy::too_many_arguments)]
pub fn fx_expand_level_portable(
    a_re: &[i16],
    a_im: &[i16],
    s_re: &[i16],
    s_im: &[i16],
    b: usize,
    y_re: i32,
    y_im: i32,
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    w_re: &mut [i32],
    w_im: &mut [i32],
    out: &mut [i64],
) {
    let depth = a_re.len();
    let p = seed_re.len();
    assert_eq!(a_im.len(), depth);
    assert_eq!(seed_im.len(), p);
    assert!(s_re.len() >= depth * b && s_im.len() >= depth * b);
    assert!(w_re.len() >= b && w_im.len() >= b);
    assert!(out.len() >= b * p);
    w_re[..b].fill(0);
    w_im[..b].fill(0);
    for off in 0..depth {
        let row = off * b;
        fx_suffix_cmac_portable(
            a_re[off],
            a_im[off],
            &s_re[row..row + b],
            &s_im[row..row + b],
            &mut w_re[..b],
            &mut w_im[..b],
        );
    }
    for bi in 0..b {
        fx_metric_update_portable(
            y_re - w_re[bi],
            y_im - w_im[bi],
            seed_re,
            seed_im,
            metric,
            &mut out[bi * p..(bi + 1) * p],
        );
    }
}

/// [`fx_expand_level`] with a *per-node* received component: node `bi`
/// subtracts `y_re[bi]/y_im[bi]` instead of one shared scalar.
///
/// This is the fixed-point half of cross-subcarrier fusion: a whole
/// coherence block shares `R` (hence `a_*`, the seeds and the symbol
/// planes' alphabet), so the frontiers of all its subcarriers can be
/// stacked into one node axis and expanded in ONE kernel call per tree
/// level — the only per-subcarrier input is ŷ, which enters at the final
/// residual. The suffix CMAC never reads ŷ, so every node's increments
/// are bit-identical to a per-subcarrier [`fx_expand_level`] call with
/// the matching scalar ŷ (pinned by tests).
#[allow(clippy::too_many_arguments)]
pub fn fx_expand_level_multi(
    a_re: &[i16],
    a_im: &[i16],
    s_re: &[i16],
    s_im: &[i16],
    b: usize,
    y_re: &[i32],
    y_im: &[i32],
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    w_re: &mut [i32],
    w_im: &mut [i32],
    out: &mut [i64],
) {
    let depth = a_re.len();
    let p = seed_re.len();
    assert_eq!(a_im.len(), depth);
    assert_eq!(seed_im.len(), p);
    assert!(y_re.len() >= b && y_im.len() >= b);
    assert!(s_re.len() >= depth * b && s_im.len() >= depth * b);
    assert!(w_re.len() >= b && w_im.len() >= b);
    assert!(out.len() >= b * p);
    w_re[..b].fill(0);
    w_im[..b].fill(0);
    for off in 0..depth {
        let row = off * b;
        fx_suffix_cmac(
            a_re[off],
            a_im[off],
            &s_re[row..row + b],
            &s_im[row..row + b],
            &mut w_re[..b],
            &mut w_im[..b],
        );
    }
    for bi in 0..b {
        let u_re = y_re[bi] - w_re[bi];
        let u_im = y_im[bi] - w_im[bi];
        fx_metric_update(
            u_re,
            u_im,
            seed_re,
            seed_im,
            metric,
            &mut out[bi * p..(bi + 1) * p],
        );
    }
}

/// Fully-portable variant of [`fx_expand_level_multi`] (never dispatches
/// to intrinsics) — the oracle for the bit-identity tests.
#[allow(clippy::too_many_arguments)]
pub fn fx_expand_level_multi_portable(
    a_re: &[i16],
    a_im: &[i16],
    s_re: &[i16],
    s_im: &[i16],
    b: usize,
    y_re: &[i32],
    y_im: &[i32],
    seed_re: &[i32],
    seed_im: &[i32],
    metric: MetricKind,
    w_re: &mut [i32],
    w_im: &mut [i32],
    out: &mut [i64],
) {
    let depth = a_re.len();
    let p = seed_re.len();
    assert_eq!(a_im.len(), depth);
    assert_eq!(seed_im.len(), p);
    assert!(y_re.len() >= b && y_im.len() >= b);
    assert!(s_re.len() >= depth * b && s_im.len() >= depth * b);
    assert!(w_re.len() >= b && w_im.len() >= b);
    assert!(out.len() >= b * p);
    w_re[..b].fill(0);
    w_im[..b].fill(0);
    for off in 0..depth {
        let row = off * b;
        fx_suffix_cmac_portable(
            a_re[off],
            a_im[off],
            &s_re[row..row + b],
            &s_im[row..row + b],
            &mut w_re[..b],
            &mut w_im[..b],
        );
    }
    for bi in 0..b {
        fx_metric_update_portable(
            y_re[bi] - w_re[bi],
            y_im[bi] - w_im[bi],
            seed_re,
            seed_im,
            metric,
            &mut out[bi * p..(bi + 1) * p],
        );
    }
}

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 implementations. Integer arithmetic only — exact, hence
    //! bit-identical to the portable kernels by construction; the tests
    //! in this module's parent pin that equivalence on random inputs.

    use super::MetricKind;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available and slice bounds as asserted
    /// by [`super::fx_suffix_cmac`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn suffix_cmac(
        a_re: i16,
        a_im: i16,
        s_re: &[i16],
        s_im: &[i16],
        w_re: &mut [i32],
        w_im: &mut [i32],
    ) {
        let b = w_re.len();
        let var = _mm256_set1_epi32(a_re as i32);
        let vai = _mm256_set1_epi32(a_im as i32);
        let mut i = 0;
        while i + 8 <= b {
            // Widen 8 i16 symbol lanes to i32.
            let sr = _mm256_cvtepi16_epi32(_mm_loadu_si128(s_re.as_ptr().add(i) as *const _));
            let si = _mm256_cvtepi16_epi32(_mm_loadu_si128(s_im.as_ptr().add(i) as *const _));
            let rr = _mm256_mullo_epi32(var, sr);
            let ii = _mm256_mullo_epi32(vai, si);
            let ri = _mm256_mullo_epi32(var, si);
            let ir = _mm256_mullo_epi32(vai, sr);
            let wr = _mm256_loadu_si256(w_re.as_ptr().add(i) as *const _);
            let wi = _mm256_loadu_si256(w_im.as_ptr().add(i) as *const _);
            _mm256_storeu_si256(
                w_re.as_mut_ptr().add(i) as *mut _,
                _mm256_add_epi32(wr, _mm256_sub_epi32(rr, ii)),
            );
            _mm256_storeu_si256(
                w_im.as_mut_ptr().add(i) as *mut _,
                _mm256_add_epi32(wi, _mm256_add_epi32(ri, ir)),
            );
            i += 8;
        }
        let (ar, ai) = (a_re as i32, a_im as i32);
        while i < b {
            let sr = s_re[i] as i32;
            let si = s_im[i] as i32;
            w_re[i] += ar * sr - ai * si;
            w_im[i] += ar * si + ai * sr;
            i += 1;
        }
    }

    /// Widen the two 4-lane halves of an i32 vector to i64 and store the
    /// lane-wise combination `re² + im²` (exact: `mul_epi32` is a full
    /// 32×32→64 signed multiply).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_sq_sum(dr: __m256i, di: __m256i, out: *mut i64) {
        let dr_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(dr));
        let dr_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(dr));
        let di_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(di));
        let di_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(di));
        let lo = _mm256_add_epi64(
            _mm256_mul_epi32(dr_lo, dr_lo),
            _mm256_mul_epi32(di_lo, di_lo),
        );
        let hi = _mm256_add_epi64(
            _mm256_mul_epi32(dr_hi, dr_hi),
            _mm256_mul_epi32(di_hi, di_hi),
        );
        _mm256_storeu_si256(out as *mut _, lo);
        _mm256_storeu_si256(out.add(4) as *mut _, hi);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available and slice bounds as asserted
    /// by [`super::fx_metric_update`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn metric_update(
        u_re: i32,
        u_im: i32,
        seed_re: &[i32],
        seed_im: &[i32],
        metric: MetricKind,
        out: &mut [i64],
    ) {
        let p = out.len();
        let vur = _mm256_set1_epi32(u_re);
        let vui = _mm256_set1_epi32(u_im);
        let mut i = 0;
        while i + 8 <= p {
            let dr = _mm256_sub_epi32(vur, _mm256_loadu_si256(seed_re.as_ptr().add(i) as *const _));
            let di = _mm256_sub_epi32(vui, _mm256_loadu_si256(seed_im.as_ptr().add(i) as *const _));
            match metric {
                MetricKind::L2 => store_sq_sum(dr, di, out.as_mut_ptr().add(i)),
                MetricKind::LInf => {
                    // |d| < 2^31 by the overflow analysis, so abs_epi32
                    // never sees i32::MIN and max/widen are exact.
                    let m = _mm256_max_epi32(_mm256_abs_epi32(dr), _mm256_abs_epi32(di));
                    let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
                    let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(m));
                    _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut _, lo);
                    _mm256_storeu_si256(out.as_mut_ptr().add(i + 4) as *mut _, hi);
                }
            }
            i += 8;
        }
        if i < p {
            super::fx_metric_update_portable(
                u_re,
                u_im,
                &seed_re[i..],
                &seed_im[i..],
                metric,
                &mut out[i..],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scalar complex reference: no lane structure at all.
    #[allow(clippy::too_many_arguments)]
    fn expand_reference(
        a_re: &[i16],
        a_im: &[i16],
        s_re: &[i16],
        s_im: &[i16],
        b: usize,
        y_re: i32,
        y_im: i32,
        seed_re: &[i32],
        seed_im: &[i32],
        metric: MetricKind,
    ) -> Vec<i64> {
        let p = seed_re.len();
        let mut out = vec![0i64; b * p];
        for bi in 0..b {
            let mut wr = 0i32;
            let mut wi = 0i32;
            for (off, (&ar, &ai)) in a_re.iter().zip(a_im).enumerate() {
                let sr = s_re[off * b + bi] as i32;
                let si = s_im[off * b + bi] as i32;
                wr += ar as i32 * sr - ai as i32 * si;
                wi += ar as i32 * si + ai as i32 * sr;
            }
            for c in 0..p {
                let dr = ((y_re - wr) - seed_re[c]) as i64;
                let di = ((y_im - wi) - seed_im[c]) as i64;
                out[bi * p + c] = match metric {
                    MetricKind::L2 => dr * dr + di * di,
                    MetricKind::LInf => dr.abs().max(di.abs()),
                };
            }
        }
        out
    }

    /// Random inputs inside the documented Q-format bounds.
    #[allow(clippy::type_complexity)]
    fn random_problem(
        rng: &mut StdRng,
        depth: usize,
        b: usize,
        p: usize,
    ) -> (
        Vec<i16>,
        Vec<i16>,
        Vec<i16>,
        Vec<i16>,
        i32,
        i32,
        Vec<i32>,
        Vec<i32>,
    ) {
        let coef = |rng: &mut StdRng| rng.gen_range(-2047i32..=2047) as i16;
        let sym = |rng: &mut StdRng| rng.gen_range(-4424i32..=4424) as i16;
        let a_re: Vec<i16> = (0..depth).map(|_| coef(rng)).collect();
        let a_im: Vec<i16> = (0..depth).map(|_| coef(rng)).collect();
        let s_re: Vec<i16> = (0..depth * b).map(|_| sym(rng)).collect();
        let s_im: Vec<i16> = (0..depth * b).map(|_| sym(rng)).collect();
        let y_re = rng.gen_range(-(1 << 29)..=(1 << 29));
        let y_im = rng.gen_range(-(1 << 29)..=(1 << 29));
        let seed_mag = 2 * 2047 * 4424;
        let seed_re: Vec<i32> = (0..p)
            .map(|_| rng.gen_range(-seed_mag..=seed_mag))
            .collect();
        let seed_im: Vec<i32> = (0..p)
            .map(|_| rng.gen_range(-seed_mag..=seed_mag))
            .collect();
        (a_re, a_im, s_re, s_im, y_re, y_im, seed_re, seed_im)
    }

    #[test]
    fn fused_kernel_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(depth, b, p) in &[(0, 1, 4), (1, 8, 16), (3, 5, 7), (8, 256, 16), (15, 33, 64)] {
            let (a_re, a_im, s_re, s_im, y_re, y_im, seed_re, seed_im) =
                random_problem(&mut rng, depth, b, p);
            for metric in [MetricKind::L2, MetricKind::LInf] {
                let want = expand_reference(
                    &a_re, &a_im, &s_re, &s_im, b, y_re, y_im, &seed_re, &seed_im, metric,
                );
                let mut w_re = vec![0i32; b];
                let mut w_im = vec![0i32; b];
                let mut out = vec![0i64; b * p];
                fx_expand_level(
                    &a_re, &a_im, &s_re, &s_im, b, y_re, y_im, &seed_re, &seed_im, metric,
                    &mut w_re, &mut w_im, &mut out,
                );
                assert_eq!(out, want, "dispatch kernel (depth={depth} b={b} p={p})");
                fx_expand_level_portable(
                    &a_re, &a_im, &s_re, &s_im, b, y_re, y_im, &seed_re, &seed_im, metric,
                    &mut w_re, &mut w_im, &mut out,
                );
                assert_eq!(out, want, "portable kernel (depth={depth} b={b} p={p})");
            }
        }
    }

    /// The dispatching entry points must be bit-identical to the portable
    /// kernels — trivially true without `simd-intrinsics`, and the actual
    /// AVX2-vs-portable guarantee with it.
    #[test]
    fn dispatch_bit_identical_to_portable() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let depth = (trial % 16) + 1;
            let b = 1 + (trial * 13) % 70;
            let p = [2, 4, 8, 16, 64][trial % 5];
            let (a_re, a_im, s_re, s_im, y_re, y_im, seed_re, seed_im) =
                random_problem(&mut rng, depth, b, p);
            for metric in [MetricKind::L2, MetricKind::LInf] {
                let mut w1 = (vec![0i32; b], vec![0i32; b]);
                let mut w2 = (vec![0i32; b], vec![0i32; b]);
                let mut o1 = vec![0i64; b * p];
                let mut o2 = vec![0i64; b * p];
                fx_expand_level(
                    &a_re, &a_im, &s_re, &s_im, b, y_re, y_im, &seed_re, &seed_im, metric,
                    &mut w1.0, &mut w1.1, &mut o1,
                );
                fx_expand_level_portable(
                    &a_re, &a_im, &s_re, &s_im, b, y_re, y_im, &seed_re, &seed_im, metric,
                    &mut w2.0, &mut w2.1, &mut o2,
                );
                assert_eq!(o1, o2, "trial {trial} metric {metric:?}");
                assert_eq!(w1, w2, "suffix accumulators, trial {trial}");
            }
        }
    }

    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    #[test]
    fn avx2_kernels_bit_identical_to_portable() {
        if !is_x86_feature_detected!("avx2") {
            eprintln!("skipping: host has no AVX2, portable fallback is in use");
            return;
        }
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..100 {
            let b = 1 + trial % 40;
            let p = 1 + (trial * 7) % 70;
            let (a_re, a_im, _, _, y_re, y_im, seed_re, seed_im) =
                random_problem(&mut rng, 1, b, p);
            let s_re: Vec<i16> = (0..b)
                .map(|_| rng.gen_range(-4424i32..=4424) as i16)
                .collect();
            let s_im: Vec<i16> = (0..b)
                .map(|_| rng.gen_range(-4424i32..=4424) as i16)
                .collect();
            let mut wr1 = vec![1i32; b];
            let mut wi1 = vec![-2i32; b];
            let mut wr2 = wr1.clone();
            let mut wi2 = wi1.clone();
            // SAFETY: AVX2 checked above.
            unsafe { super::avx2::suffix_cmac(a_re[0], a_im[0], &s_re, &s_im, &mut wr1, &mut wi1) };
            fx_suffix_cmac_portable(a_re[0], a_im[0], &s_re, &s_im, &mut wr2, &mut wi2);
            assert_eq!((&wr1, &wi1), (&wr2, &wi2), "suffix_cmac trial {trial}");
            for metric in [MetricKind::L2, MetricKind::LInf] {
                let mut o1 = vec![0i64; p];
                let mut o2 = vec![0i64; p];
                // SAFETY: AVX2 checked above.
                unsafe {
                    super::avx2::metric_update(y_re, y_im, &seed_re, &seed_im, metric, &mut o1)
                };
                fx_metric_update_portable(y_re, y_im, &seed_re, &seed_im, metric, &mut o2);
                assert_eq!(o1, o2, "metric_update trial {trial} {metric:?}");
            }
        }
    }

    /// The multi-ŷ kernel on stacked lanes must match one scalar-ŷ call
    /// per lane group, bit for bit — the fixed-point fusion lemma.
    #[test]
    fn multi_y_kernel_matches_per_scalar_calls() {
        let mut rng = StdRng::seed_from_u64(61);
        for &(depth, fl, blocks, p) in &[(0, 1, 1, 4), (2, 4, 3, 8), (5, 16, 4, 16), (7, 3, 5, 7)] {
            let b = fl * blocks;
            let (a_re, a_im, s_re, s_im, _, _, seed_re, seed_im) =
                random_problem(&mut rng, depth, b, p);
            // One ŷ per block, broadcast to that block's `fl` node lanes.
            let block_y: Vec<(i32, i32)> = (0..blocks)
                .map(|_| {
                    (
                        rng.gen_range(-(1 << 29)..=(1 << 29)),
                        rng.gen_range(-(1 << 29)..=(1 << 29)),
                    )
                })
                .collect();
            let y_re: Vec<i32> = (0..b).map(|bi| block_y[bi / fl].0).collect();
            let y_im: Vec<i32> = (0..b).map(|bi| block_y[bi / fl].1).collect();
            for metric in [MetricKind::L2, MetricKind::LInf] {
                let mut w_re = vec![0i32; b];
                let mut w_im = vec![0i32; b];
                let mut fused = vec![0i64; b * p];
                fx_expand_level_multi(
                    &a_re, &a_im, &s_re, &s_im, b, &y_re, &y_im, &seed_re, &seed_im, metric,
                    &mut w_re, &mut w_im, &mut fused,
                );
                let mut portable = vec![0i64; b * p];
                fx_expand_level_multi_portable(
                    &a_re,
                    &a_im,
                    &s_re,
                    &s_im,
                    b,
                    &y_re,
                    &y_im,
                    &seed_re,
                    &seed_im,
                    metric,
                    &mut w_re,
                    &mut w_im,
                    &mut portable,
                );
                assert_eq!(fused, portable, "dispatch vs portable, depth={depth}");
                // Per-block scalar-ŷ calls on the narrow slices.
                for blk in 0..blocks {
                    let mut nar_s_re = vec![0i16; depth * fl];
                    let mut nar_s_im = vec![0i16; depth * fl];
                    for off in 0..depth {
                        for l in 0..fl {
                            nar_s_re[off * fl + l] = s_re[off * b + blk * fl + l];
                            nar_s_im[off * fl + l] = s_im[off * b + blk * fl + l];
                        }
                    }
                    let mut wr = vec![0i32; fl];
                    let mut wi = vec![0i32; fl];
                    let mut want = vec![0i64; fl * p];
                    fx_expand_level(
                        &a_re,
                        &a_im,
                        &nar_s_re,
                        &nar_s_im,
                        fl,
                        block_y[blk].0,
                        block_y[blk].1,
                        &seed_re,
                        &seed_im,
                        metric,
                        &mut wr,
                        &mut wi,
                        &mut want,
                    );
                    assert_eq!(
                        &fused[blk * fl * p..(blk + 1) * fl * p],
                        &want[..],
                        "block {blk} of {blocks}, depth={depth} fl={fl} p={p} {metric:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn metric_update_extreme_residuals_exact() {
        // The largest residuals the overflow analysis admits: make sure
        // the i64 squares don't wrap in either implementation.
        let u = 1_700_000_000i32;
        let seeds_re = [-18_111_856i32, 18_111_856, 0, 7];
        let seeds_im = [18_111_856i32, -18_111_856, 3, -9];
        let mut out = [0i64; 4];
        fx_metric_update(u, -u, &seeds_re, &seeds_im, MetricKind::L2, &mut out);
        for (c, &o) in out.iter().enumerate() {
            let dr = (u as i64 - seeds_re[c] as i64).pow(2);
            let di = (-u as i64 - seeds_im[c] as i64).pow(2);
            assert_eq!(o, dr + di);
        }
        fx_metric_update(u, -u, &seeds_re, &seeds_im, MetricKind::LInf, &mut out);
        for (c, &o) in out.iter().enumerate() {
            let dr = (u as i64 - seeds_re[c] as i64).abs();
            let di = (-u as i64 - seeds_im[c] as i64).abs();
            assert_eq!(o, dr.max(di));
        }
    }
}
