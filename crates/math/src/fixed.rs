//! Fixed-point (i16/i32) number layer for the quantized decode path.
//!
//! The paper's FPGA decoder runs every partial-distance MAC on fixed-point
//! DSP slices; this module defines the Q-format that the software
//! reproduction of that datapath uses and the saturating conversions into
//! it. The format is chosen so that *every* intermediate of the per-level
//! kernels in [`crate::fxkernel`] provably fits its container — overflow
//! is excluded by construction (and re-checked by debug assertions), not
//! hoped away.
//!
//! ## Q-format and scaling
//!
//! Three quantities enter the metric `|ŷ_i − Σ_j r̂_ij ŝ_j|`:
//!
//! * **Symbols** `s` — fixed scale `2^12` (Q3.12 in an `i16`). The unit-
//!   energy constellations keep `|Re s|, |Im s| ≤ 1.0801` (64-QAM), so a
//!   quantized component is at most [`SYM_QMAX`] `= 4424 < 2^13`.
//! * **Coefficients** `R` — dynamic per-problem scale `α` chosen so the
//!   largest component of `R` maps to [`COEF_TARGET`] `= 2047 < 2^11`
//!   (see [`coef_scale`]). `R` is data-dependent, so a fixed scale would
//!   either waste range or clip; scaling to a fixed target preserves
//!   precision *relative to the problem*, exactly like a hardware block-
//!   floating-point normalizer.
//! * **Received vector** `ȳ` — quantized at the *product* scale `α·2^12`
//!   into an `i32`, saturated to ±[`Y_CLAMP`] `= 2^29`, so the residual
//!   `ŷ − Σ r̂ŝ` lives on the same grid as the accumulated products.
//!
//! ## Overflow analysis
//!
//! For a suffix of length `k+1 ≤ M` (one row of `R` against the fixed
//! symbols), the complex accumulator obeys
//!
//! ```text
//! |Re Σ r̂ŝ| ≤ M · 2 · COEF_TARGET · SYM_QMAX = M · 18 111 856 < 2^31  for M ≤ 118
//! ```
//!
//! and the residual `d = ŷ − Σ r̂ŝ` obeys `|d| ≤ 2^29 + M·1.82e7 < 2^31`
//! for `M ≤` [`MAX_FX_ANTENNAS`] `= 64` — so suffix sums and residuals are
//! exact in `i32` with no saturation inside the kernel loops. The squared
//! ℓ2 increment `d_re² + d_im²` is then at most `2·(1.7e9)² < 2^63`,
//! exact in `i64`; only the *running path metric* (a sum of up to `M`
//! increments) uses `saturating_add`, and the ℓ∞ metric (a max) can never
//! grow at all. Saturation therefore appears in exactly two places:
//! input quantization ([`quantize_i16`], [`quantize_i32`]) and path-metric
//! accumulation ([`MetricKind::combine`]).

/// Fractional bits of the symbol quantization (Q3.12).
pub const SYM_FRAC_BITS: u32 = 12;

/// Symbol scale `2^SYM_FRAC_BITS`.
pub const SYM_SCALE: f64 = (1i64 << SYM_FRAC_BITS) as f64;

/// Largest quantized symbol component: `round(1.0801 · 4096)` for the
/// unit-energy 64-QAM corner point.
pub const SYM_QMAX: i32 = 4424;

/// Target magnitude of the largest quantized `R` component (`< 2^11`),
/// the headroom that makes the `i32` suffix accumulation exact.
pub const COEF_TARGET: f64 = 2047.0;

/// Saturation bound of the quantized received vector `ŷ` (`2^29`).
pub const Y_CLAMP: i32 = 1 << 29;

/// Largest antenna count for which the overflow analysis above holds.
pub const MAX_FX_ANTENNAS: usize = 64;

/// Round-to-nearest quantization of `x·scale` saturated to the `i16`
/// range.
#[inline]
pub fn quantize_i16(x: f64, scale: f64) -> i16 {
    let q = (x * scale).round();
    q.clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

/// Round-to-nearest quantization of `x·scale` saturated to ±[`Y_CLAMP`].
#[inline]
pub fn quantize_i32(x: f64, scale: f64) -> i32 {
    let q = (x * scale).round();
    q.clamp(-(Y_CLAMP as f64), Y_CLAMP as f64) as i32
}

/// Dynamic coefficient scale `α` for a matrix whose largest component
/// magnitude is `max_abs`: maps it onto [`COEF_TARGET`]. Degenerate
/// all-zero inputs keep `α = 1`.
#[inline]
pub fn coef_scale(max_abs: f64) -> f64 {
    if max_abs > 0.0 && max_abs.is_finite() {
        COEF_TARGET / max_abs
    } else {
        1.0
    }
}

/// Which per-level metric the search accumulates.
///
/// * [`MetricKind::L2`] — the ML metric: squared Euclidean distance,
///   combined by (saturating) addition.
/// * [`MetricKind::LInf`] — the infinity-norm relaxation of Seethaler &
///   Bölcskei: the per-level increment is `max(|Re d|, |Im d|)` and path
///   metrics combine by `max`. Replaces the two multiplies of `|d|²` with
///   two compares, and is *monotone non-decreasing along any path* — the
///   property that keeps sphere pruning admissible (a prefix's metric
///   never exceeds any of its leaves'), at a small BER cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricKind {
    /// Sum of squared component distances (the exact ML metric).
    #[default]
    L2,
    /// Max of component absolute distances (ℓ∞ sphere decoding).
    LInf,
}

impl MetricKind {
    /// Fold a child increment into a path metric: saturating sum for ℓ2,
    /// max for ℓ∞. Both keep the metric monotone non-decreasing in depth.
    #[inline]
    pub fn combine(self, path: i64, increment: i64) -> i64 {
        match self {
            MetricKind::L2 => path.saturating_add(increment),
            MetricKind::LInf => path.max(increment),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_to_nearest() {
        assert_eq!(quantize_i16(1.0, SYM_SCALE), 4096);
        assert_eq!(quantize_i16(-1.0, SYM_SCALE), -4096);
        assert_eq!(quantize_i16(1.00012, SYM_SCALE), 4096); // 4096.49 rounds down
        assert_eq!(quantize_i16(0.5 / SYM_SCALE, SYM_SCALE), 1); // round half away
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize_i16(1e9, 1.0), i16::MAX);
        assert_eq!(quantize_i16(-1e9, 1.0), i16::MIN);
        assert_eq!(quantize_i32(1e18, 1.0), Y_CLAMP);
        assert_eq!(quantize_i32(-1e18, 1.0), -Y_CLAMP);
    }

    #[test]
    fn sym_qmax_covers_qam64_corner() {
        // 64-QAM unit-energy corner component is 7/√42.
        let corner = 7.0 / 42f64.sqrt();
        assert_eq!(quantize_i16(corner, SYM_SCALE) as i32, SYM_QMAX);
    }

    #[test]
    fn coef_scale_hits_target_and_guards_degenerate() {
        let a = coef_scale(3.5);
        assert!(((3.5 * a) - COEF_TARGET).abs() < 1e-9);
        assert_eq!(coef_scale(0.0), 1.0);
        assert_eq!(coef_scale(f64::INFINITY), 1.0);
    }

    #[test]
    fn suffix_accumulation_bound_fits_i32() {
        // The documented bound: M·2·COEF_TARGET·SYM_QMAX must fit i32 for
        // MAX_FX_ANTENNAS, with the ŷ clamp added for the residual.
        let per_term = 2.0 * COEF_TARGET * SYM_QMAX as f64;
        let acc = MAX_FX_ANTENNAS as f64 * per_term;
        assert!(acc + (Y_CLAMP as f64) < i32::MAX as f64);
    }

    #[test]
    fn combine_l2_saturates_linf_maxes() {
        assert_eq!(MetricKind::L2.combine(i64::MAX, 1), i64::MAX);
        assert_eq!(MetricKind::L2.combine(3, 4), 7);
        assert_eq!(MetricKind::LInf.combine(3, 4), 4);
        assert_eq!(MetricKind::LInf.combine(9, 4), 9);
    }
}
