//! Complex scalar arithmetic.
//!
//! MIMO baseband signals, channel gains, and constellation points are all
//! complex; this is the element type of every matrix and vector in the
//! workspace.

use crate::float::Float;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over any [`Float`] scalar.
///
/// `repr(C)` pins the layout to `[re, im]` so bulk helpers (e.g.
/// [`crate::fill_tiles`]) may view slices of `Complex<F>` as flat
/// interleaved scalars.
#[derive(Copy, Clone, Default, PartialEq)]
#[repr(C)]
pub struct Complex<F> {
    /// Real part.
    pub re: F,
    /// Imaginary part.
    pub im: F,
}

impl<F: Float> Complex<F> {
    /// Construct from real and imaginary parts.
    #[inline(always)]
    pub fn new(re: F, im: F) -> Self {
        Complex { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline(always)]
    pub fn zero() -> Self {
        Complex {
            re: F::ZERO,
            im: F::ZERO,
        }
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline(always)]
    pub fn one() -> Self {
        Complex {
            re: F::ONE,
            im: F::ZERO,
        }
    }

    /// A purely real value.
    #[inline(always)]
    pub fn from_real(re: F) -> Self {
        Complex { re, im: F::ZERO }
    }

    /// Lossy construction from `f64` parts.
    #[inline(always)]
    pub fn from_f64(re: f64, im: f64) -> Self {
        Complex {
            re: F::from_f64(re),
            im: F::from_f64(im),
        }
    }

    /// Complex conjugate `re - i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²` — the quantity every partial-distance
    /// computation in the sphere decoder reduces to.
    #[inline(always)]
    pub fn norm_sqr(self) -> F {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline(always)]
    pub fn abs(self) -> F {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: F) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `self * other.conj()` without materializing the conjugate.
    #[inline(always)]
    pub fn mul_conj(self, other: Self) -> Self {
        Complex {
            re: self.re * other.re + self.im * other.im,
            im: self.im * other.re - self.re * other.im,
        }
    }

    /// Multiplicative inverse. Returns a non-finite value for zero input,
    /// mirroring IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// `true` when both parts are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Convert the parts to `f64`.
    #[inline]
    pub fn to_c64(self) -> Complex<f64> {
        Complex {
            re: self.re.to_f64(),
            im: self.im.to_f64(),
        }
    }

    /// Lossy conversion between scalar precisions (e.g. `f32` → `F16` for
    /// the half-precision ablation).
    #[inline]
    pub fn cast<G: Float>(self) -> Complex<G> {
        Complex {
            re: G::from_f64(self.re.to_f64()),
            im: G::from_f64(self.im.to_f64()),
        }
    }

    /// Fused accumulate `acc += a * b` using scalar `mul_add` where the
    /// representation provides one.
    #[inline(always)]
    pub fn mul_acc(acc: &mut Self, a: Self, b: Self) {
        acc.re = a.re.mul_add(b.re, acc.re);
        acc.re = (-a.im).mul_add(b.im, acc.re);
        acc.im = a.re.mul_add(b.im, acc.im);
        acc.im = a.im.mul_add(b.re, acc.im);
    }
}

impl<F: Float> Add for Complex<F> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<F: Float> Sub for Complex<F> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<F: Float> Mul for Complex<F> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<F: Float> Div for Complex<F> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl<F: Float> Neg for Complex<F> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<F: Float> AddAssign for Complex<F> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<F: Float> SubAssign for Complex<F> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<F: Float> MulAssign for Complex<F> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<F: Float> DivAssign for Complex<F> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<F: Float> Sum for Complex<F> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::zero(), |a, b| a + b)
    }
}

impl<F: Float> fmt::Debug for Complex<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<F: Float> fmt::Display for Complex<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= F::ZERO {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type C = Complex<f64>;

    fn c(re: f64, im: f64) -> C {
        C::new(re, im)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = c(1.0, 2.0);
        let b = c(-3.5, 0.25);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = c(2.0, 3.0);
        let b = c(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12i² = -14 + 5i
        assert_eq!(a * b, c(-14.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let i = c(0.0, 1.0);
        assert_eq!(i * i, c(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(3.0, -2.0);
        let b = c(0.5, 1.5);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conj_properties() {
        let a = c(1.0, 2.0);
        assert_eq!(a.conj().conj(), a);
        // a * conj(a) = |a|² (purely real).
        let p = a * a.conj();
        assert_eq!(p, c(5.0, 0.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn mul_conj_matches_explicit() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -4.0);
        assert_eq!(a.mul_conj(b), a * b.conj());
    }

    #[test]
    fn inv_matches_division() {
        let a = c(2.0, -1.0);
        let one = C::one();
        let inv = a.inv();
        assert!(((one / a) - inv).abs() < 1e-15);
        assert!((a * inv - one).abs() < 1e-15);
    }

    #[test]
    fn mul_acc_accumulates_product() {
        let mut acc = c(1.0, 1.0);
        let a = c(2.0, 3.0);
        let b = c(-1.0, 4.0);
        Complex::mul_acc(&mut acc, a, b);
        assert!((acc - (c(1.0, 1.0) + a * b)).abs() < 1e-14);
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, -1.0)];
        let s: C = v.into_iter().sum();
        assert_eq!(s, C::zero());
    }

    #[test]
    fn cast_to_f32_and_back_small_values() {
        let a = c(0.5, -0.25);
        let a32: Complex<f32> = a.cast();
        let back: C = a32.cast();
        assert_eq!(back, a);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", c(1.0, 2.0)), "1+2i");
    }

    #[test]
    fn is_finite_detects_infinities() {
        assert!(c(1.0, 1.0).is_finite());
        assert!(!c(f64::INFINITY, 0.0).is_finite());
        assert!(!C::zero().inv().is_finite());
    }
}
