//! Minimal floating-point abstraction.
//!
//! The decoder stack is generic over the scalar type so the same code runs
//! in `f64` (test oracle), `f32` (the FPGA design's native precision), and
//! software [`F16`](crate::f16::F16) (the paper's future-work
//! half-precision study). Only the operations the decoders actually need
//! are abstracted.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar floating-point type usable by every kernel in this workspace.
///
/// Implemented for `f32`, `f64`, and the software half-precision type
/// [`F16`](crate::f16::F16).
pub trait Float:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (rounds to nearest representable value).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused (or emulated) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Machine epsilon of the representation.
    fn epsilon() -> Self;
    /// Positive infinity.
    fn infinity() -> Self;
    /// The larger of `self` and `other` (NaN-propagating like `f64::max`).
    #[allow(unstable_name_collisions)]
    fn maximum(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
    /// The smaller of `self` and `other`.
    fn minimum(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
    /// Lossy conversion from `usize` (exact for small integers).
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }
}

macro_rules! impl_float_native {
    ($t:ty) => {
        impl Float for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline(always)]
            fn infinity() -> Self {
                <$t>::INFINITY
            }
        }
    };
}

impl_float_native!(f32);
impl_float_native!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<F: Float>(x: f64) -> f64 {
        F::from_f64(x).to_f64()
    }

    #[test]
    fn f32_roundtrip_exact_for_small_ints() {
        for i in -1000..1000 {
            assert_eq!(roundtrip::<f32>(i as f64), i as f64);
        }
    }

    #[test]
    fn constants_behave() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::ONE * f64::ONE, 1.0f64);
        assert!(f32::infinity() > 1e30f32);
        assert!(f64::epsilon() < 1e-10);
    }

    #[test]
    fn max_min_behave() {
        assert_eq!(Float::maximum(2.0f64, 3.0), 3.0);
        assert_eq!(Float::minimum(2.0f64, 3.0), 2.0);
        assert_eq!(Float::maximum(-1.0f32, -2.0), -1.0);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let x = 1.5f64;
        assert!((x.mul_add(2.0, 0.25) - (1.5 * 2.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn from_usize_exact() {
        assert_eq!(f32::from_usize(42).to_f64(), 42.0);
        assert_eq!(f64::from_usize(1_000_000).to_f64(), 1_000_000.0);
    }
}
