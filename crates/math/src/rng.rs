//! Complex Gaussian sampling.
//!
//! Rayleigh-fading channel entries are `CN(0, 1)` and AWGN is `CN(0, σ²)`;
//! both are sampled with a Box–Muller transform so that only the offline
//! `rand` crate's uniform generator is required.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use rand::Rng;

/// Sampler for circularly-symmetric complex Gaussians `CN(0, σ²)`.
///
/// Real and imaginary parts are independent `N(0, σ²/2)`, so that
/// `E[|x|²] = σ²`.
#[derive(Clone, Copy, Debug)]
pub struct ComplexNormal {
    /// Standard deviation of each real component (`σ/√2`).
    component_std: f64,
}

impl ComplexNormal {
    /// Sampler with total variance `variance` (i.e. `E[|x|²] = variance`).
    pub fn with_variance(variance: f64) -> Self {
        assert!(
            variance >= 0.0 && variance.is_finite(),
            "variance must be finite and non-negative"
        );
        ComplexNormal {
            component_std: (variance / 2.0).sqrt(),
        }
    }

    /// The standard `CN(0, 1)` sampler used for channel coefficients.
    pub fn standard() -> Self {
        Self::with_variance(1.0)
    }

    /// Draw one sample.
    pub fn sample<F: Float, R: Rng + ?Sized>(&self, rng: &mut R) -> Complex<F> {
        let (g0, g1) = box_muller(rng);
        Complex::new(
            F::from_f64(g0 * self.component_std),
            F::from_f64(g1 * self.component_std),
        )
    }

    /// Fill a vector with i.i.d. samples.
    pub fn sample_vec<F: Float, R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Complex<F>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fill a matrix with i.i.d. samples (e.g. the Rayleigh channel `H`).
    pub fn sample_matrix<F: Float, R: Rng + ?Sized>(
        &self,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> Matrix<F> {
        Matrix::from_fn(rows, cols, |_, _| self.sample(rng))
    }
}

/// One Box–Muller draw: two independent `N(0,1)` samples.
#[inline]
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let radius = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (radius * theta.cos(), radius * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_variance_converge() {
        let mut rng = StdRng::seed_from_u64(1234);
        let sampler = ComplexNormal::with_variance(2.0);
        let n = 200_000;
        let samples: Vec<Complex<f64>> = sampler.sample_vec(n, &mut rng);
        let mean: Complex<f64> = samples
            .iter()
            .copied()
            .sum::<Complex<f64>>()
            .scale(1.0 / n as f64);
        let var: f64 = samples.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean:?} too far from 0");
        assert!((var - 2.0).abs() < 0.05, "variance {var} too far from 2");
    }

    #[test]
    fn components_are_balanced_and_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(99);
        let sampler = ComplexNormal::standard();
        let n = 200_000;
        let samples: Vec<Complex<f64>> = sampler.sample_vec(n, &mut rng);
        let var_re: f64 = samples.iter().map(|x| x.re * x.re).sum::<f64>() / n as f64;
        let var_im: f64 = samples.iter().map(|x| x.im * x.im).sum::<f64>() / n as f64;
        let cov: f64 = samples.iter().map(|x| x.re * x.im).sum::<f64>() / n as f64;
        assert!((var_re - 0.5).abs() < 0.02);
        assert!((var_im - 0.5).abs() < 0.02);
        assert!(cov.abs() < 0.02);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<Complex<f64>> =
            ComplexNormal::standard().sample_vec(16, &mut StdRng::seed_from_u64(7));
        let b: Vec<Complex<f64>> =
            ComplexNormal::standard().sample_vec(16, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variance_yields_zeros() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = ComplexNormal::with_variance(0.0);
        let x: Complex<f64> = s.sample(&mut rng);
        assert_eq!(x, Complex::zero());
    }

    #[test]
    fn sample_matrix_shape_and_statistics() {
        let mut rng = StdRng::seed_from_u64(8);
        let m: Matrix<f64> = ComplexNormal::standard().sample_matrix(64, 64, &mut rng);
        assert_eq!(m.shape(), (64, 64));
        // Average |h|² should be ~1 over 4096 entries.
        let avg = m.frobenius_norm_sqr() / 4096.0;
        assert!((avg - 1.0).abs() < 0.1, "avg power {avg}");
    }

    #[test]
    #[should_panic(expected = "variance must be finite")]
    fn negative_variance_rejected() {
        ComplexNormal::with_variance(-1.0);
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(77);
        let s = ComplexNormal::standard();
        for _ in 0..10_000 {
            let x: Complex<f32> = s.sample(&mut rng);
            assert!(x.is_finite());
        }
    }
}
