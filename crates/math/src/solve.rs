//! Triangular solves and least-squares helpers.
//!
//! The sphere decoder's Babai / successive-interference-cancellation seeds
//! and the ZF baseline both reduce to triangular solves against the QR
//! factors.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use crate::qr::qr_with_qty;
use crate::vector::CVector;

/// Solve `L z = b` for lower-triangular `L` (forward substitution).
///
/// # Panics
/// If shapes mismatch or a diagonal entry is exactly zero.
pub fn forward_substitute<F: Float>(l: &Matrix<F>, b: &[Complex<F>]) -> CVector<F> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "forward_substitute: L must be square");
    assert_eq!(b.len(), n, "forward_substitute: rhs length mismatch");
    let mut z = vec![Complex::zero(); n];
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..i {
            let delta = l[(i, j)] * z[j];
            acc -= delta;
        }
        let d = l[(i, i)];
        assert!(d.norm_sqr() > F::ZERO, "forward_substitute: zero pivot {i}");
        z[i] = acc / d;
    }
    z
}

/// Solve `U x = b` for upper-triangular `U` (back substitution).
pub fn back_substitute<F: Float>(u: &Matrix<F>, b: &[Complex<F>]) -> CVector<F> {
    let n = u.rows();
    assert_eq!(u.cols(), n, "back_substitute: U must be square");
    assert_eq!(b.len(), n, "back_substitute: rhs length mismatch");
    let mut x = vec![Complex::zero(); n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in i + 1..n {
            let delta = u[(i, j)] * x[j];
            acc -= delta;
        }
        let d = u[(i, i)];
        assert!(d.norm_sqr() > F::ZERO, "back_substitute: zero pivot {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `L^H x = z` given the *lower* factor `L`, without materializing
/// `L^H` (used by the Cholesky solve).
pub fn back_substitute_hermitian_of_lower<F: Float>(l: &Matrix<F>, z: &[Complex<F>]) -> CVector<F> {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(z.len(), n);
    let mut x = vec![Complex::zero(); n];
    for i in (0..n).rev() {
        let mut acc = z[i];
        for j in i + 1..n {
            // (L^H)[i,j] = conj(L[j,i])
            let delta = l[(j, i)].conj() * x[j];
            acc -= delta;
        }
        let d = l[(i, i)].conj();
        assert!(d.norm_sqr() > F::ZERO, "hermitian back-sub: zero pivot {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `U^H z = b` given the *upper* factor `U`, without materializing
/// `U^H` (used by the inverse-power condition estimator: `A^H A = R^H R`).
pub fn forward_substitute_hermitian_of_upper<F: Float>(
    u: &Matrix<F>,
    b: &[Complex<F>],
) -> CVector<F> {
    let n = u.rows();
    assert_eq!(u.cols(), n, "hermitian forward-sub: U must be square");
    assert_eq!(b.len(), n, "hermitian forward-sub: rhs length mismatch");
    let mut z = vec![Complex::zero(); n];
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..i {
            // (U^H)[i,j] = conj(U[j,i])
            let delta = u[(j, i)].conj() * z[j];
            acc -= delta;
        }
        let d = u[(i, i)].conj();
        assert!(
            d.norm_sqr() > F::ZERO,
            "hermitian forward-sub: zero pivot {i}"
        );
        z[i] = acc / d;
    }
    z
}

/// Unconstrained least-squares solution `argmin_x ‖y − A x‖²` via QR
/// (`A` is `n × m`, `n ≥ m`, full column rank). This is the Zero-Forcing
/// estimate before slicing to the constellation.
pub fn least_squares<F: Float>(a: &Matrix<F>, y: &[Complex<F>]) -> CVector<F> {
    let (r, ybar, _tail) = qr_with_qty(a, y);
    back_substitute(&r, &ybar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;
    type C = Complex<f64>;

    fn random_vec(n: usize, rng: &mut StdRng) -> CVector<f64> {
        (0..n)
            .map(|_| C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn random_lower(n: usize, rng: &mut StdRng) -> M {
        Matrix::from_fn(n, n, |i, j| {
            if j < i {
                C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            } else if j == i {
                C::new(rng.gen_range(1.0..2.0), 0.0) // well-conditioned pivot
            } else {
                C::zero()
            }
        })
    }

    #[test]
    fn forward_substitution_inverts_lower_product() {
        let mut rng = StdRng::seed_from_u64(31);
        let l = random_lower(7, &mut rng);
        let x = random_vec(7, &mut rng);
        let b = l.mul_vec(&x);
        let z = forward_substitute(&l, &b);
        for (a, b) in z.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn back_substitution_inverts_upper_product() {
        let mut rng = StdRng::seed_from_u64(32);
        let u = random_lower(6, &mut rng).hermitian(); // upper with real diag
        let x = random_vec(6, &mut rng);
        let b = u.mul_vec(&x);
        let z = back_substitute(&u, &b);
        for (a, b) in z.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn hermitian_of_lower_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(33);
        let l = random_lower(5, &mut rng);
        let z = random_vec(5, &mut rng);
        let x1 = back_substitute_hermitian_of_lower(&l, &z);
        let x2 = back_substitute(&l.hermitian(), &z);
        for (a, b) in x1.iter().zip(x2.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Consistent overdetermined system: y = A x exactly.
        let mut rng = StdRng::seed_from_u64(34);
        let a = Matrix::from_fn(9, 4, |_, _| {
            C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let x = random_vec(4, &mut rng);
        let y = a.mul_vec(&x);
        let x_hat = least_squares(&a, &y);
        for (h, t) in x_hat.iter().zip(x.iter()) {
            assert!((*h - *t).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        // Normal-equation optimality: A^H (y - A x̂) = 0.
        let mut rng = StdRng::seed_from_u64(35);
        let a = Matrix::from_fn(8, 3, |_, _| {
            C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let y = random_vec(8, &mut rng);
        let x_hat = least_squares(&a, &y);
        let ax = a.mul_vec(&x_hat);
        let resid: CVector<f64> = crate::vector::sub(&y, &ax);
        let grad = a.hermitian().mul_vec(&resid);
        for g in grad {
            assert!(g.abs() < 1e-9, "gradient entry {g:?} not ~0");
        }
    }

    #[test]
    fn hermitian_of_upper_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(36);
        let u = random_lower(5, &mut rng).hermitian(); // upper triangular
        let b = random_vec(5, &mut rng);
        let z1 = forward_substitute_hermitian_of_upper(&u, &b);
        let z2 = forward_substitute(&u.hermitian(), &b);
        for (a, c) in z1.iter().zip(z2.iter()) {
            assert!((*a - *c).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn singular_back_substitution_panics() {
        let mut u = M::identity(3);
        u[(1, 1)] = C::zero();
        back_substitute(&u, &[C::one(), C::one(), C::one()]);
    }
}
