//! # sd-math
//!
//! From-scratch complex linear algebra substrate for the sphere-decoding
//! MIMO detector reproduction (Hassan et al., IPPS 2023).
//!
//! The paper's GEMM-based sphere decoder casts all partial-distance
//! evaluations as complex matrix–matrix products; this crate provides every
//! numeric primitive that formulation needs, without external linear-algebra
//! dependencies:
//!
//! * [`Complex`] numbers generic over a local [`Float`] trait
//!   (`f32`, `f64`, and a software [`F16`] used for the paper's
//!   half-precision future-work study),
//! * dense row-major [`Matrix`] storage with a full complex
//!   [GEMM](mod@gemm) (naive reference, cache-blocked, and rayon-parallel —
//!   the stand-in for the paper's Intel MKL CPU baseline),
//! * Householder [QR decomposition](mod@qr) (plus a modified Gram–Schmidt
//!   cross-check) used by the `‖ȳ − Rs‖²` refactoring of Eq. (4),
//! * complex [Cholesky factorization](mod@cholesky) and
//!   [triangular solves](solve) for the ZF/MMSE linear baselines,
//! * [complex-Gaussian sampling](rng) (Box–Muller) for Rayleigh channels
//!   and AWGN.
//!
//! All kernels are deterministic for a fixed seed and are exercised by
//! property-based tests (`Q^H Q = I`, `QR = A`, GEMM vs naive reference,
//! `L L^H = A`, …).

#![warn(missing_docs)]
#![warn(clippy::all)]
// `!(d > 0)` is the NaN-robust positivity test in the Cholesky pivot check.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod atomic;
pub mod bulk;
pub mod cholesky;
pub mod complex;
pub mod condition;
pub mod f16;
pub mod fixed;
pub mod float;
pub mod fxkernel;
pub mod gemm;
pub mod matrix;
pub mod qr;
pub mod rng;
pub mod solve;
pub mod vector;

pub use atomic::AtomicF64Min;
pub use bulk::fill_tiles;
pub use cholesky::{cholesky, solve_hermitian, CholeskyError};
pub use complex::Complex;
pub use condition::{condition_estimate, smallest_singular_estimate, spectral_norm_estimate};
pub use f16::F16;
pub use fixed::MetricKind;
pub use float::Float;
pub use fxkernel::{fx_expand_level, fx_expand_level_multi, fx_metric_update, fx_suffix_cmac};
pub use gemm::{
    gemm, gemm_acc_into, gemm_broadcast_acc_into, gemm_broadcast_acc_stacked_into, gemm_flops,
    gemm_into, GemmAlgo,
};
pub use matrix::Matrix;
pub use qr::{qr, qr_with_qty, QrDecomposition, QrFactors, QrScratch};
pub use rng::ComplexNormal;
pub use vector::CVector;

/// Single-precision complex scalar (the FPGA design's native precision).
pub type C32 = Complex<f32>;
/// Double-precision complex scalar (reference precision for tests).
pub type C64 = Complex<f64>;
/// Software half-precision complex scalar (future-work precision study).
pub type C16 = Complex<F16>;
