//! Lock-free atomic minimum over non-negative `f64` values.
//!
//! The subtree-parallel sphere decoder shares its shrinking squared
//! radius between workers through this primitive: non-negative IEEE-754
//! doubles order exactly like their bit patterns interpreted as unsigned
//! integers, so a CAS fetch-min over the bits is a fetch-min over the
//! floats — no lock, no float-atomic hardware support needed.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically decreasing shared `f64` (e.g. a sphere radius).
///
/// Only non-negative values (including `+∞`) are supported; the bit-level
/// ordering trick breaks for negative floats and `try_lower` debug-asserts
/// against them. Updates only ever *lower* the stored value, which is
/// what makes relaxed readers safe in a pruning context: a stale read is
/// merely a looser bound, never an incorrect one.
#[derive(Debug)]
pub struct AtomicF64Min(AtomicU64);

impl AtomicF64Min {
    /// New shared minimum holding `+∞` (no bound yet).
    pub fn new() -> Self {
        AtomicF64Min(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// Current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Reset to `value` unconditionally (e.g. at the start of a search
    /// attempt). Not for concurrent use with `try_lower`.
    pub fn store(&self, value: f64) {
        debug_assert!(value >= 0.0);
        self.0.store(value.to_bits(), Ordering::Release);
    }

    /// Lower the stored value to `value` if it improves it; returns
    /// whether this call won the update. Equal values do *not* win, so
    /// exactly one caller ever owns a given minimum.
    pub fn try_lower(&self, value: f64) -> bool {
        debug_assert!(value >= 0.0);
        let bits = value.to_bits();
        self.0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                // Non-negative IEEE-754 doubles order like their bit
                // patterns, so integer comparison is float comparison.
                (bits < cur).then_some(bits)
            })
            .is_ok()
    }
}

impl Default for AtomicF64Min {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_min_semantics() {
        let r = AtomicF64Min::new();
        assert!(r.load().is_infinite());
        assert!(r.try_lower(5.0));
        assert!(!r.try_lower(7.0), "raising must fail");
        assert!(r.try_lower(1.5));
        assert_eq!(r.load(), 1.5);
        assert!(!r.try_lower(1.5), "equal must fail");
    }

    #[test]
    fn store_resets_the_floor() {
        let r = AtomicF64Min::new();
        assert!(r.try_lower(2.0));
        r.store(10.0);
        assert_eq!(r.load(), 10.0);
        assert!(r.try_lower(9.0), "reset floor must be lowerable again");
    }

    #[test]
    fn concurrent_lowering_converges_to_global_min() {
        let r = AtomicF64Min::new();
        let wins: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let r = &r;
                    s.spawn(move || {
                        let mut wins = 0u64;
                        for i in 0..1000u64 {
                            // Values dense around the global min 1.0.
                            let v = 1.0 + ((t * 1000 + i) % 97) as f64 / 7.0;
                            if r.try_lower(v) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(r.load(), 1.0);
        assert!(wins >= 1, "someone must have set the min");
    }
}
