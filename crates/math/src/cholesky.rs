//! Complex Cholesky factorization and Hermitian solves.
//!
//! The MMSE linear baseline solves `(H^H H + σ² I) x = H^H y`; the Gram
//! matrix is Hermitian positive definite, so Cholesky is the natural
//! factorization.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use crate::vector::CVector;

/// Failure modes of [`cholesky`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot was zero or negative: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "cholesky: matrix is not square"),
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: non-positive pivot at index {pivot}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L L^H`.
///
/// Only the lower triangle of `a` is read (the matrix is assumed
/// Hermitian).
pub fn cholesky<F: Float>(a: &Matrix<F>) -> Result<Matrix<F>, CholeskyError> {
    let (n, m) = a.shape();
    if n != m {
        return Err(CholeskyError::NotSquare);
    }
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal: l_jj = sqrt(a_jj - Σ_{k<j} |l_jk|²)
        let mut d = a[(j, j)].re;
        for k in 0..j {
            d -= l[(j, k)].norm_sqr();
        }
        if !(d > F::ZERO) || !d.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { pivot: j });
        }
        let ljj = d.sqrt();
        l[(j, j)] = Complex::from_real(ljj);
        // Column below the diagonal.
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                let delta = l[(i, k)] * l[(j, k)].conj();
                s -= delta;
            }
            l[(i, j)] = s.scale(F::ONE / ljj);
        }
    }
    Ok(l)
}

/// Solve the Hermitian positive-definite system `A x = b` via Cholesky.
pub fn solve_hermitian<F: Float>(
    a: &Matrix<F>,
    b: &[Complex<F>],
) -> Result<CVector<F>, CholeskyError> {
    let l = cholesky(a)?;
    // L z = b (forward), L^H x = z (backward).
    let z = crate::solve::forward_substitute(&l, b);
    let x = crate::solve::back_substitute_hermitian_of_lower(&l, &z);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmAlgo};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;
    type C = Complex<f64>;

    /// Random Hermitian positive-definite matrix `B^H B + n·I`.
    fn random_hpd(n: usize, seed: u64) -> M {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(n, n, |_, _| {
            C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let mut a = gemm(&b.hermitian(), &b, GemmAlgo::Naive);
        for i in 0..n {
            a[(i, i)] += C::from_real(n as f64);
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        for &(n, seed) in &[(1, 1), (3, 2), (8, 3), (16, 4)] {
            let a = random_hpd(n, seed);
            let l = cholesky(&a).expect("HPD matrix must factor");
            let llh = gemm(&l, &l.hermitian(), GemmAlgo::Naive);
            assert!(
                llh.approx_eq(&a, 1e-9),
                "LL^H != A for n={n}: diff {}",
                llh.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn factor_is_lower_triangular_with_real_positive_diagonal() {
        let a = random_hpd(6, 9);
        let l = cholesky(&a).unwrap();
        for i in 0..6 {
            assert!(l[(i, i)].im.abs() < 1e-14);
            assert!(l[(i, i)].re > 0.0);
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], C::zero());
            }
        }
    }

    #[test]
    fn solve_hermitian_solves() {
        let a = random_hpd(10, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let x_true: Vec<C> = (0..10)
            .map(|_| C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = solve_hermitian(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((*xi - *ti).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = M::identity(3);
        a[(1, 1)] = C::from_real(-1.0);
        match cholesky(&a) {
            Err(CholeskyError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        assert_eq!(cholesky(&M::zeros(2, 3)), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn error_display_messages() {
        assert!(CholeskyError::NotSquare.to_string().contains("not square"));
        assert!(CholeskyError::NotPositiveDefinite { pivot: 4 }
            .to_string()
            .contains("index 4"));
    }
}
