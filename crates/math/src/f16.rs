//! Software IEEE 754 binary16 ("half precision").
//!
//! The paper's future-work section proposes FP16 / mixed-precision FPGA
//! pipelines to cut DSP and memory usage. We have no FP16 hardware, so this
//! module emulates binary16 in software: values are stored as the 16-bit
//! pattern and every arithmetic operation is performed in `f32` and then
//! rounded back through the half-precision format (round-to-nearest-even),
//! which is exactly how an FP16 MAC with an FP32 accumulator-free datapath
//! behaves. This is the substrate for the precision-ablation benches.

use crate::float::Float;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// IEEE 754 binary16 value emulated in software.
///
/// All arithmetic round-trips through the 16-bit format, so rounding error
/// accumulates exactly as it would on a native FP16 datapath.
#[derive(Copy, Clone, Default, PartialEq)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Machine epsilon (2⁻¹⁰).
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let x = value.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp = ((x >> 23) & 0xFF) as i32;
        let mant = x & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal half-precision range; keep 10 mantissa bits.
            let mant16 = mant >> 13;
            let half = (sign as u32) | (((e + 15) as u32) << 10) | mant16;
            // Round to nearest even on the 13 dropped bits.
            let round_bits = mant & 0x1FFF;
            let rounded = if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) == 1) {
                half + 1 // may carry into the exponent, which is correct behaviour
            } else {
                half
            };
            return F16(rounded as u16);
        }
        if e >= -24 {
            // Subnormal half.
            let full_mant = mant | 0x0080_0000; // implicit leading 1
            let shift = (-14 - e) as u32 + 13;
            let mant16 = full_mant >> shift;
            let round_mask = 1u32 << (shift - 1);
            let round_bits = full_mant & ((1u32 << shift) - 1);
            let rounded =
                if round_bits > round_mask || (round_bits == round_mask && (mant16 & 1) == 1) {
                    mant16 + 1
                } else {
                    mant16
                };
            return F16(sign | rounded as u16);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Widen to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0x1F {
            // Inf / NaN.
            sign | 0x7F80_0000 | (mant << 13)
        } else if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut m = mant;
                let mut e = -14i32;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else {
            sign | ((exp as i32 - 15 + 127) as u32) << 23 | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// `true` when neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

f16_binop!(Add, add, AddAssign, add_assign, +);
f16_binop!(Sub, sub, SubAssign, sub_assign, -);
f16_binop!(Mul, mul, MulAssign, mul_assign, *);
f16_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |a, b| a + b)
    }
}

impl Float for F16 {
    const ZERO: Self = F16::ZERO;
    const ONE: Self = F16::ONE;

    fn from_f64(x: f64) -> Self {
        F16::from_f32(x as f32)
    }
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    fn sqrt(self) -> Self {
        F16::from_f32(self.to_f32().sqrt())
    }
    fn abs(self) -> Self {
        F16(self.0 & 0x7FFF)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        // An FP16 datapath without a wide accumulator rounds after the
        // multiply and again after the add.
        (self * a) + b
    }
    fn is_finite(self) -> bool {
        F16::is_finite(self)
    }
    fn epsilon() -> Self {
        F16::EPSILON
    }
    fn infinity() -> Self {
        F16::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} must be exact in fp16");
        }
    }

    #[test]
    fn one_has_canonical_bits() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn epsilon_is_2_pow_minus_10() {
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let h = F16::from_f32(70000.0);
        assert!(!h.is_finite());
        assert_eq!(h.to_bits(), 0x7C00);
        let h = F16::from_f32(-70000.0);
        assert_eq!(h.to_bits(), 0xFC00);
    }

    #[test]
    fn max_finite_value() {
        // binary16 max = 65504.
        let h = F16::from_f32(65504.0);
        assert!(h.is_finite());
        assert_eq!(h.to_f32(), 65504.0);
        // 65520 rounds to infinity (midpoint rounds to even -> exp overflow).
        assert!(!F16::from_f32(65520.0).is_finite());
    }

    #[test]
    fn subnormals_roundtrip() {
        let smallest = 2.0f32.powi(-24);
        let h = F16::from_f32(smallest);
        assert_eq!(h.to_f32(), smallest);
        // Halfway below the smallest subnormal flushes to zero.
        let h = F16::from_f32(smallest / 4.0);
        assert_eq!(h.to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties-to-even
        // keeps 1.0.
        let h = F16::from_f32(1.0 + 2.0f32.powi(-11));
        assert_eq!(h.to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 → rounds to even
        // (1 + 2^-9).
        let h = F16::from_f32(1.0 + 3.0 * 2.0f32.powi(-11));
        assert_eq!(h.to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn arithmetic_rounds_each_step() {
        // 2048 + 1 is not representable in fp16 (spacing is 2 at that scale).
        let a = F16::from_f32(2048.0);
        let b = F16::ONE;
        assert_eq!((a + b).to_f32(), 2048.0);
        // But 2048 + 2 is.
        let two = F16::from_f32(2.0);
        assert_eq!((a + two).to_f32(), 2050.0);
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        let h = F16::from_f32(1.5);
        assert_eq!((-h).to_f32(), -1.5);
        assert_eq!((-(-h)).to_bits(), h.to_bits());
    }

    #[test]
    fn nan_propagates() {
        let nan = F16::from_f32(f32::NAN);
        assert!(!nan.is_finite());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn float_trait_impl_consistent() {
        let x = <F16 as Float>::from_f64(0.25);
        assert_eq!(x.to_f64(), 0.25);
        assert_eq!(Float::sqrt(F16::from_f32(4.0)).to_f32(), 2.0);
        assert_eq!(Float::abs(F16::from_f32(-3.0)).to_f32(), 3.0);
    }

    #[test]
    fn exhaustive_f32_roundtrip_of_all_finite_halves() {
        // Every finite half value must survive f16 -> f32 -> f16 unchanged.
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if !h.is_finite() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed roundtrip");
        }
    }
}
