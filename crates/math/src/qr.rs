//! Complex QR decomposition.
//!
//! Eq. (4) of the paper rewrites the ML metric `‖y − Hs‖²` as
//! `‖ȳ − Rs‖²` with `H = QR` and `ȳ = Q^H y`, which makes the metric
//! separable level-by-level (Eq. (5)/(6)) — the property the search tree is
//! built on. This module implements Householder QR (numerically robust
//! default) plus a modified Gram–Schmidt variant used as a cross-check in
//! tests.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use crate::vector::CVector;

/// Full QR decomposition `A = Q R` of an `n × m` matrix (`n ≥ m`):
/// `Q` is `n × n` unitary, `R` is `n × m` upper triangular.
#[derive(Clone, Debug)]
pub struct QrDecomposition<F: Float> {
    /// Unitary factor.
    pub q: Matrix<F>,
    /// Upper-triangular factor (same shape as the input).
    pub r: Matrix<F>,
}

/// Householder reflectors of one decomposition, stored compactly so they
/// can be applied to vectors without materializing `Q`.
struct Reflectors<F> {
    /// Householder vectors; `v[k]` has length `n - k`.
    vs: Vec<CVector<F>>,
    /// Real scaling factors `tau_k = 2 / (v^H v)`.
    taus: Vec<F>,
    n: usize,
}

/// Apply `H_k … H_0` (i.e. `Q^H`) to `x` in place.
fn apply_qh_slices<F: Float>(vs: &[CVector<F>], taus: &[F], x: &mut [Complex<F>]) {
    for (k, (v, &tau)) in vs.iter().zip(taus.iter()).enumerate() {
        if tau == F::ZERO {
            continue;
        }
        // w = v^H x[k..]
        let mut w = Complex::zero();
        for (vi, xi) in v.iter().zip(x[k..].iter()) {
            Complex::mul_acc(&mut w, vi.conj(), *xi);
        }
        let w = w.scale(tau);
        // x[k..] -= w * v
        for (vi, xi) in v.iter().zip(x[k..].iter_mut()) {
            *xi -= w * *vi;
        }
    }
}

impl<F: Float> Reflectors<F> {
    /// Apply `H_k … H_0` (i.e. `Q^H`) to `x` in place.
    fn apply_qh(&self, x: &mut [Complex<F>]) {
        assert_eq!(x.len(), self.n);
        apply_qh_slices(&self.vs, &self.taus, x);
    }

    /// Apply `H_0 … H_k` (i.e. `Q`) to `x` in place.
    fn apply_q(&self, x: &mut [Complex<F>]) {
        assert_eq!(x.len(), self.n);
        for (k, (v, &tau)) in self.vs.iter().zip(self.taus.iter()).enumerate().rev() {
            if tau == F::ZERO {
                continue;
            }
            let mut w = Complex::zero();
            for (vi, xi) in v.iter().zip(x[k..].iter()) {
                Complex::mul_acc(&mut w, vi.conj(), *xi);
            }
            let w = w.scale(tau);
            for (vi, xi) in v.iter().zip(x[k..].iter_mut()) {
                *xi -= w * *vi;
            }
        }
    }
}

/// Factorize in place, writing the reflectors into `vs`/`taus` (whose
/// element buffers are reused across calls, so steady-state callers never
/// touch the allocator) and leaving `R` in `a`.
fn householder_into<F: Float>(a: &mut Matrix<F>, vs: &mut Vec<CVector<F>>, taus: &mut Vec<F>) {
    let (n, m) = a.shape();
    assert!(n >= m, "QR requires rows >= cols (got {n}x{m})");
    let steps = m.min(n.saturating_sub(1));
    if vs.len() < steps {
        vs.resize_with(steps, Vec::new);
    }
    vs.truncate(steps);
    taus.clear();

    for k in 0..steps {
        // Column tail x = A[k.., k].
        let x = &mut vs[k];
        x.clear();
        x.extend((k..n).map(|r| a[(r, k)]));
        let norm_x = crate::vector::norm(x);
        if norm_x <= F::epsilon() {
            taus.push(F::ZERO);
            continue;
        }
        let alpha = x[0];
        let alpha_abs = alpha.abs();
        // beta = -(alpha/|alpha|)·‖x‖, or -‖x‖ when alpha == 0.
        let beta = if alpha_abs > F::ZERO {
            alpha.scale(-norm_x / alpha_abs)
        } else {
            Complex::from_real(-norm_x)
        };
        // v = x - beta·e1; v^H v = 2(‖x‖² + |x₀|·‖x‖) so tau = 2/(v^H v).
        x[0] = alpha - beta;
        let vhv = norm_x * norm_x + alpha_abs * norm_x;
        let tau = if vhv > F::ZERO { F::ONE / vhv } else { F::ZERO };

        // Apply the reflector to the trailing columns k..m of A.
        for c in k..m {
            let mut w = Complex::zero();
            for (i, vi) in x.iter().enumerate() {
                Complex::mul_acc(&mut w, vi.conj(), a[(k + i, c)]);
            }
            let w = w.scale(tau);
            for (i, vi) in x.iter().enumerate() {
                let delta = w * *vi;
                a[(k + i, c)] -= delta;
            }
        }
        // Column k is now beta·e1 exactly (clean up rounding below the
        // diagonal).
        a[(k, k)] = beta;
        for r in k + 1..n {
            a[(r, k)] = Complex::zero();
        }
        taus.push(tau);
    }
}

/// Factorize in place, returning the reflectors and leaving `R` in `a`.
fn householder<F: Float>(a: &mut Matrix<F>) -> Reflectors<F> {
    let n = a.rows();
    let mut vs = Vec::new();
    let mut taus = Vec::new();
    householder_into(a, &mut vs, &mut taus);
    Reflectors { vs, taus, n }
}

/// Full Householder QR: `a = Q R`.
pub fn qr<F: Float>(a: &Matrix<F>) -> QrDecomposition<F> {
    let mut r = a.clone();
    let refl = householder(&mut r);
    let n = a.rows();
    // Q = H_0 … H_{m-1}: apply Q to each identity column.
    let mut q = Matrix::zeros(n, n);
    for c in 0..n {
        let mut e = vec![Complex::zero(); n];
        e[c] = Complex::one();
        refl.apply_q(&mut e);
        for (r_i, val) in e.into_iter().enumerate() {
            q[(r_i, c)] = val;
        }
    }
    QrDecomposition { q, r }
}

/// Decoder-oriented QR: factorizes `h` and simultaneously computes
/// `ȳ = Q^H y`, returning the thin `m × m` upper-triangular `R` and the
/// first `m` entries of `ȳ` (the only parts the tree search uses), plus the
/// residual energy `‖ȳ[m..]‖²` that is constant over all hypotheses.
pub fn qr_with_qty<F: Float>(h: &Matrix<F>, y: &[Complex<F>]) -> (Matrix<F>, CVector<F>, F) {
    let (n, m) = h.shape();
    assert_eq!(y.len(), n, "y length must equal rows of H");
    let mut r_full = h.clone();
    let refl = householder(&mut r_full);
    let mut ybar = y.to_vec();
    refl.apply_qh(&mut ybar);
    let r_thin = r_full.block(0, m, 0, m);
    let tail_energy = crate::vector::norm_sqr(&ybar[m..]);
    ybar.truncate(m);
    (r_thin, ybar, tail_energy)
}

/// The channel-dependent half of a decoder QR, split from the
/// receive-vector half so it can be cached and reused across frames that
/// share one `H` (channel-coherent serving): [`QrFactors::factor`] runs
/// the Householder factorization (everything that touches only `H`), and
/// [`QrFactors::apply_qty_into`] replays the stored reflectors onto a
/// fresh `y`. Composing the two is bit-identical to
/// [`QrScratch::qr_with_qty_into`] by construction — the factorization
/// never reads `y`, and the reflector application is the identical
/// `apply_qh` loop.
///
/// All buffers are reused across calls, so both halves are
/// allocation-free once a problem shape has been seen.
pub struct QrFactors<F: Float> {
    /// Factored work matrix: full-size `R` after [`QrFactors::factor`].
    r_full: Matrix<F>,
    vs: Vec<CVector<F>>,
    taus: Vec<F>,
    /// Work buffer for the full-length `Q^H y` product.
    ybar: CVector<F>,
    /// Work matrix for the block apply: `Q^H Y` over all columns at once.
    yblock: Matrix<F>,
    /// Per-column reflector coefficients `w_b = τ·(v^H Y[k.., b])`.
    wrow: CVector<F>,
}

impl<F: Float> Default for QrFactors<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Float> QrFactors<F> {
    /// Empty factors; buffers grow to steady state on first use.
    pub fn new() -> Self {
        QrFactors {
            r_full: Matrix::zeros(0, 0),
            vs: Vec::new(),
            taus: Vec::new(),
            ybar: Vec::new(),
            yblock: Matrix::zeros(0, 0),
            wrow: Vec::new(),
        }
    }

    /// Factorize `h`, storing the Householder reflectors in `self` and
    /// writing the thin `m × m` upper-triangular factor into `r_out`.
    pub fn factor(&mut self, h: &Matrix<F>, r_out: &mut Matrix<F>) {
        let (n, m) = h.shape();
        self.r_full.resize_for_overwrite(n, m);
        for i in 0..n {
            for j in 0..m {
                self.r_full[(i, j)] = h[(i, j)];
            }
        }
        householder_into(&mut self.r_full, &mut self.vs, &mut self.taus);
        r_out.resize_for_overwrite(m, m);
        for i in 0..m {
            for j in 0..m {
                r_out[(i, j)] = self.r_full[(i, j)];
            }
        }
    }

    /// Apply the stored `Q^H` to `y`, writing the first `m` entries into
    /// `ybar_out` and returning the tail energy `‖(Q^H y)[m..]‖²`. Must
    /// follow a [`QrFactors::factor`] of an `n × m` matrix with
    /// `y.len() == n`.
    pub fn apply_qty_into(&mut self, y: &[Complex<F>], ybar_out: &mut CVector<F>) -> F {
        let (n, m) = self.r_full.shape();
        assert_eq!(y.len(), n, "y length must equal rows of the factored H");
        self.ybar.clear();
        self.ybar.extend_from_slice(y);
        apply_qh_slices(&self.vs, &self.taus, &mut self.ybar);
        let tail_energy = crate::vector::norm_sqr(&self.ybar[m..]);
        ybar_out.clear();
        ybar_out.extend_from_slice(&self.ybar[..m]);
        tail_energy
    }

    /// Batched [`QrFactors::apply_qty_into`]: apply the stored `Q^H` to a
    /// whole block of receive vectors at once. `ys` is `n × B` (one column
    /// per vector); on return `ybars` is `m × B` (column `b` is
    /// `(Q^H y_b)[..m]`) and `tails[b]` is `‖(Q^H y_b)[m..]‖²`.
    ///
    /// This is the frame-serving GEMM apply: one reflector sweep updates
    /// every column, with the inner loop running contiguously across the
    /// block (row-major `ys`), instead of `B` separate vector replays.
    /// Columns are arithmetically independent and each column performs the
    /// exact per-reflector operation sequence of the vector path, so every
    /// column is **bit-identical** to a standalone
    /// [`QrFactors::apply_qty_into`] of that `y`.
    pub fn apply_qty_block_into(
        &mut self,
        ys: &Matrix<F>,
        ybars: &mut Matrix<F>,
        tails: &mut Vec<F>,
    ) {
        let (n, m) = self.r_full.shape();
        assert_eq!(ys.rows(), n, "ys rows must equal rows of the factored H");
        let b = ys.cols();
        self.yblock.resize_for_overwrite(n, b);
        self.yblock.as_mut_slice().copy_from_slice(ys.as_slice());
        for (k, (v, &tau)) in self.vs.iter().zip(self.taus.iter()).enumerate() {
            if tau == F::ZERO {
                continue;
            }
            // w = v^H Y[k..] — accumulated row by row so each column sums
            // its products in the same order as the vector path.
            self.wrow.clear();
            self.wrow.resize(b, Complex::zero());
            for (i, vi) in v.iter().enumerate() {
                let c = vi.conj();
                for (w, x) in self.wrow.iter_mut().zip(self.yblock.row(k + i).iter()) {
                    Complex::mul_acc(w, c, *x);
                }
            }
            for w in self.wrow.iter_mut() {
                *w = w.scale(tau);
            }
            // Y[k..] -= v w (rank-1 update, contiguous across the block).
            for (i, &vi) in v.iter().enumerate() {
                let wrow = &self.wrow;
                for (x, w) in self.yblock.row_mut(k + i).iter_mut().zip(wrow.iter()) {
                    *x -= *w * vi;
                }
            }
        }
        ybars.resize_for_overwrite(m, b);
        for i in 0..m {
            ybars.row_mut(i).copy_from_slice(self.yblock.row(i));
        }
        tails.clear();
        tails.resize(b, F::ZERO);
        for i in m..n {
            for (t, x) in tails.iter_mut().zip(self.yblock.row(i).iter()) {
                *t += x.norm_sqr();
            }
        }
    }

    /// Shape `(n, m)` of the most recently factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.r_full.shape()
    }
}

/// Reusable buffers for [`QrScratch::qr_with_qty_into`]: the full-size `R`
/// work matrix, the Householder reflectors, and the `Q^H y` vector. After
/// one factorization of each problem shape, later calls never touch the
/// allocator — the property the serving runtime's steady-state decode path
/// is gated on.
pub struct QrScratch<F: Float> {
    factors: QrFactors<F>,
}

impl<F: Float> Default for QrScratch<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Float> QrScratch<F> {
    /// Empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        QrScratch {
            factors: QrFactors::new(),
        }
    }

    /// [`qr_with_qty`], writing the thin `R` into `r_out` and `ȳ[..m]`
    /// into `ybar_out` (both reusing their existing capacity) and
    /// returning the tail energy `‖ȳ[m..]‖²`. Bit-identical to
    /// [`qr_with_qty`]; allocation-free once every buffer has seen the
    /// problem shape. Implemented as [`QrFactors::factor`] followed by
    /// [`QrFactors::apply_qty_into`] — the factor/apply split the serve
    /// layer's channel-coherent prep cache builds on.
    pub fn qr_with_qty_into(
        &mut self,
        h: &Matrix<F>,
        y: &[Complex<F>],
        r_out: &mut Matrix<F>,
        ybar_out: &mut CVector<F>,
    ) -> F {
        assert_eq!(y.len(), h.rows(), "y length must equal rows of H");
        self.factors.factor(h, r_out);
        self.factors.apply_qty_into(y, ybar_out)
    }
}

/// Thin QR via modified Gram–Schmidt: returns (`Q` `n×m` with orthonormal
/// columns, `R` `m×m` upper triangular). Less robust than Householder for
/// ill-conditioned inputs; kept as an independent oracle for tests.
pub fn qr_mgs<F: Float>(a: &Matrix<F>) -> (Matrix<F>, Matrix<F>) {
    let (n, m) = a.shape();
    assert!(n >= m, "QR requires rows >= cols");
    let mut q = a.clone();
    let mut r = Matrix::zeros(m, m);
    for j in 0..m {
        let qj: CVector<F> = q.col(j);
        let njj = crate::vector::norm(&qj);
        r[(j, j)] = Complex::from_real(njj);
        if njj > F::ZERO {
            for i in 0..n {
                q[(i, j)] = q[(i, j)].scale(F::ONE / njj);
            }
        }
        let qj: CVector<F> = q.col(j);
        for k in j + 1..m {
            let qk: CVector<F> = q.col(k);
            let proj = crate::vector::dotc(&qj, &qk);
            r[(j, k)] = proj;
            for i in 0..n {
                let delta = proj * qj[i];
                q[(i, k)] -= delta;
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, GemmAlgo};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> M {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn assert_upper_triangular(r: &M, tol: f64) {
        for i in 0..r.rows() {
            for j in 0..r.cols().min(i) {
                assert!(
                    r[(i, j)].abs() <= tol,
                    "R[{i},{j}] = {:?} not ~0",
                    r[(i, j)]
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs_input() {
        for &(n, m, seed) in &[(4, 4, 1), (8, 4, 2), (10, 10, 3), (20, 20, 4), (3, 1, 5)] {
            let a = random_matrix(n, m, seed);
            let QrDecomposition { q, r } = qr(&a);
            let qr_prod = gemm(&q, &r, GemmAlgo::Naive);
            assert!(
                qr_prod.approx_eq(&a, 1e-10),
                "QR != A for {n}x{m} (diff {})",
                qr_prod.max_abs_diff(&a)
            );
            assert_upper_triangular(&r, 1e-12);
        }
    }

    #[test]
    fn q_is_unitary() {
        for &(n, m, seed) in &[(6, 3, 10), (12, 12, 11), (16, 8, 12)] {
            let a = random_matrix(n, m, seed);
            let QrDecomposition { q, .. } = qr(&a);
            let qhq = gemm(&q.hermitian(), &q, GemmAlgo::Naive);
            assert!(
                qhq.approx_eq(&M::identity(n), 1e-10),
                "Q^H Q != I for {n}x{m}"
            );
        }
    }

    #[test]
    fn qr_with_qty_preserves_metric() {
        // ‖y - Hs‖² must equal ‖ȳ - Rs‖² + tail for any s (Eq. 4).
        let mut rng = StdRng::seed_from_u64(42);
        let n = 8;
        let m = 5;
        let h = random_matrix(n, m, 77);
        let y: Vec<_> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let (r, ybar, tail) = qr_with_qty(&h, &y);
        assert_eq!(r.shape(), (m, m));
        assert_eq!(ybar.len(), m);
        for trial in 0..20 {
            let s: Vec<_> = (0..m)
                .map(|i| {
                    Complex::new(
                        ((trial + i) % 3) as f64 - 1.0,
                        ((trial * 7 + i) % 3) as f64 - 1.0,
                    )
                })
                .collect();
            let hs = h.mul_vec(&s);
            let direct = crate::vector::dist_sqr(&y, &hs);
            let rs = r.mul_vec(&s);
            let reduced = crate::vector::dist_sqr(&ybar, &rs) + tail;
            assert!(
                (direct - reduced).abs() < 1e-9,
                "metric mismatch: {direct} vs {reduced}"
            );
        }
    }

    #[test]
    fn mgs_matches_householder_r_up_to_phase() {
        // Both produce valid QRs; R diagonals may differ by a unit phase.
        // Compare |R| entry-wise.
        let a = random_matrix(10, 6, 99);
        let QrDecomposition { r: r_hh, .. } = qr(&a);
        let (_, r_mgs) = qr_mgs(&a);
        for i in 0..6 {
            for j in i..6 {
                assert!(
                    (r_hh[(i, j)].abs() - r_mgs[(i, j)].abs()).abs() < 1e-9,
                    "|R| mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn mgs_q_orthonormal() {
        let a = random_matrix(9, 5, 123);
        let (q, r) = qr_mgs(&a);
        let qhq = gemm(&q.hermitian(), &q, GemmAlgo::Naive);
        assert!(qhq.approx_eq(&M::identity(5), 1e-10));
        let qr_prod = gemm(&q, &r, GemmAlgo::Naive);
        assert!(qr_prod.approx_eq(&a, 1e-10));
    }

    #[test]
    fn rank_deficient_column_handled() {
        // Second column is a multiple of the first: MGS would produce a zero
        // pivot; Householder must not produce NaNs.
        let mut a = random_matrix(6, 3, 5);
        for i in 0..6 {
            a[(i, 1)] = a[(i, 0)].scale(2.0);
        }
        let QrDecomposition { q, r } = qr(&a);
        assert!(q.is_finite() && r.is_finite());
        let qr_prod = gemm(&q, &r, GemmAlgo::Naive);
        assert!(qr_prod.approx_eq(&a, 1e-9));
        // R[1,1] must be (numerically) zero.
        assert!(r[(1, 1)].abs() < 1e-10);
    }

    #[test]
    fn f32_qr_is_accurate_enough() {
        let a64 = random_matrix(10, 10, 321);
        let a32: Matrix<f32> = a64.cast();
        let QrDecomposition { q, r } = qr(&a32);
        let qr_prod = gemm(&q, &r, GemmAlgo::Naive);
        assert!(qr_prod.approx_eq(&a32, 1e-4));
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrix_rejected() {
        qr(&M::zeros(2, 5));
    }

    #[test]
    fn factor_apply_split_is_bit_identical_to_fused() {
        // The cacheable split: factor H once, replay Q^H onto many y's.
        // Every replay must match the fused path bit-for-bit.
        let mut rng = StdRng::seed_from_u64(0xFAC7);
        for &(n, m, seed) in &[(8, 5, 11u64), (6, 6, 12), (12, 12, 13)] {
            let h = random_matrix(n, m, seed);
            let mut factors: QrFactors<f64> = QrFactors::new();
            let mut r_split = M::zeros(0, 0);
            factors.factor(&h, &mut r_split);
            assert_eq!(factors.shape(), (n, m));
            for _ in 0..4 {
                let y: Vec<_> = (0..n)
                    .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                    .collect();
                let (r_fused, ybar_fused, tail_fused) = qr_with_qty(&h, &y);
                let mut ybar_split = Vec::new();
                let tail_split = factors.apply_qty_into(&y, &mut ybar_split);
                assert_eq!(r_fused, r_split, "{n}x{m}: R differs");
                assert_eq!(ybar_fused, ybar_split, "{n}x{m}: ybar differs");
                assert_eq!(tail_fused.to_bits(), tail_split.to_bits());
            }
        }
    }

    #[test]
    fn block_apply_is_bit_identical_to_per_vector() {
        // The frame-serving batched apply: one reflector sweep over an
        // n×B block must reproduce B standalone vector applies exactly.
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for &(n, m, bcols, seed) in &[(8, 5, 7usize, 21u64), (6, 6, 1, 22), (12, 12, 16, 23)] {
            let h = random_matrix(n, m, seed);
            let mut factors: QrFactors<f64> = QrFactors::new();
            let mut r = M::zeros(0, 0);
            factors.factor(&h, &mut r);
            let ys = Matrix::from_fn(n, bcols, |_, _| {
                Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let mut ybars = M::zeros(0, 0);
            let mut tails = Vec::new();
            factors.apply_qty_block_into(&ys, &mut ybars, &mut tails);
            assert_eq!(ybars.shape(), (m, bcols));
            assert_eq!(tails.len(), bcols);
            for b in 0..bcols {
                let y: Vec<_> = (0..n).map(|i| ys[(i, b)]).collect();
                let mut ybar_one = Vec::new();
                let tail_one = factors.apply_qty_into(&y, &mut ybar_one);
                for i in 0..m {
                    assert_eq!(
                        ybars[(i, b)],
                        ybar_one[i],
                        "{n}x{m} col {b}: ybar[{i}] differs"
                    );
                }
                assert_eq!(
                    tails[b].to_bits(),
                    tail_one.to_bits(),
                    "{n}x{m} col {b}: tail differs"
                );
            }
        }
    }

    #[test]
    fn scratch_qr_is_bit_identical_to_fresh() {
        let mut scratch: QrScratch<f64> = QrScratch::new();
        let mut r_out = M::zeros(0, 0);
        let mut ybar_out = Vec::new();
        let mut rng = StdRng::seed_from_u64(0xABCD);
        // Alternate shapes so the scratch shrinks and regrows.
        for &(n, m, seed) in &[(8, 5, 1u64), (4, 4, 2), (10, 10, 3), (6, 3, 4), (10, 10, 5)] {
            let h = random_matrix(n, m, seed);
            let y: Vec<_> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let (r, ybar, tail) = qr_with_qty(&h, &y);
            let tail2 = scratch.qr_with_qty_into(&h, &y, &mut r_out, &mut ybar_out);
            assert_eq!(r, r_out, "{n}x{m}: R differs");
            assert_eq!(ybar, ybar_out, "{n}x{m}: ybar differs");
            assert!(tail.to_bits() == tail2.to_bits(), "{n}x{m}: tail differs");
        }
    }
}
