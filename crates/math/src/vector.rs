//! Complex vector helpers.
//!
//! Received signals `y`, transmitted symbol vectors `s`, and noise `n` are
//! plain `Vec<Complex<F>>`; this module provides the handful of BLAS-1
//! operations the decoders need on them.

use crate::complex::Complex;
use crate::float::Float;

/// Alias for a complex column vector.
pub type CVector<F> = Vec<Complex<F>>;

/// Inner product `x^H y` (conjugates the first argument, as in BLAS `dotc`).
///
/// # Panics
/// If the lengths differ.
pub fn dotc<F: Float>(x: &[Complex<F>], y: &[Complex<F>]) -> Complex<F> {
    assert_eq!(x.len(), y.len(), "dotc: length mismatch");
    let mut acc = Complex::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        Complex::mul_acc(&mut acc, a.conj(), *b);
    }
    acc
}

/// Unconjugated dot product `x^T y`.
pub fn dotu<F: Float>(x: &[Complex<F>], y: &[Complex<F>]) -> Complex<F> {
    assert_eq!(x.len(), y.len(), "dotu: length mismatch");
    let mut acc = Complex::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        Complex::mul_acc(&mut acc, *a, *b);
    }
    acc
}

/// Squared Euclidean norm `‖x‖²` — the sphere-decoder distance metric.
pub fn norm_sqr<F: Float>(x: &[Complex<F>]) -> F {
    let mut acc = F::ZERO;
    for v in x {
        acc += v.norm_sqr();
    }
    acc
}

/// Euclidean norm `‖x‖`.
pub fn norm<F: Float>(x: &[Complex<F>]) -> F {
    norm_sqr(x).sqrt()
}

/// `y ← y + alpha · x` (BLAS `axpy`).
pub fn axpy<F: Float>(alpha: Complex<F>, x: &[Complex<F>], y: &mut [Complex<F>]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        Complex::mul_acc(yi, alpha, *xi);
    }
}

/// Element-wise difference `x - y` as a new vector.
pub fn sub<F: Float>(x: &[Complex<F>], y: &[Complex<F>]) -> CVector<F> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(&a, &b)| a - b).collect()
}

/// Squared distance `‖x − y‖²`.
pub fn dist_sqr<F: Float>(x: &[Complex<F>], y: &[Complex<F>]) -> F {
    assert_eq!(x.len(), y.len(), "dist_sqr: length mismatch");
    let mut acc = F::ZERO;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += (*a - *b).norm_sqr();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    type C = Complex<f64>;

    fn v(parts: &[(f64, f64)]) -> CVector<f64> {
        parts.iter().map(|&(r, i)| C::new(r, i)).collect()
    }

    #[test]
    fn dotc_conjugates_first_arg() {
        let x = v(&[(0.0, 1.0)]); // i
        let y = v(&[(0.0, 1.0)]); // i
                                  // conj(i)*i = -i*i = 1
        assert_eq!(dotc(&x, &y), C::new(1.0, 0.0));
        // unconjugated: i*i = -1
        assert_eq!(dotu(&x, &y), C::new(-1.0, 0.0));
    }

    #[test]
    fn norm_sqr_matches_dotc_with_self() {
        let x = v(&[(1.0, 2.0), (-3.0, 0.5)]);
        let d = dotc(&x, &x);
        assert!((d.re - norm_sqr(&x)).abs() < 1e-14);
        assert!(d.im.abs() < 1e-14, "self inner product must be real");
    }

    #[test]
    fn axpy_accumulates() {
        let x = v(&[(1.0, 0.0), (0.0, 1.0)]);
        let mut y = v(&[(1.0, 1.0), (2.0, 2.0)]);
        axpy(C::new(2.0, 0.0), &x, &mut y);
        assert_eq!(y, v(&[(3.0, 1.0), (2.0, 4.0)]));
    }

    #[test]
    fn dist_sqr_is_norm_of_difference() {
        let x = v(&[(1.0, 2.0), (3.0, -1.0)]);
        let y = v(&[(0.0, 2.0), (3.0, 1.0)]);
        assert!((dist_sqr(&x, &y) - norm_sqr(&sub(&x, &y))).abs() < 1e-14);
        assert!((dist_sqr(&x, &y) - (1.0 + 4.0)).abs() < 1e-14);
    }

    #[test]
    fn triangle_inequality() {
        let x = v(&[(1.0, 0.0), (0.0, 1.0)]);
        let y = v(&[(0.5, 0.5), (-1.0, 2.0)]);
        let sum: CVector<f64> = x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect();
        assert!(norm(&sum) <= norm(&x) + norm(&y) + 1e-14);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        dotc(&v(&[(1.0, 0.0)]), &v(&[(1.0, 0.0), (2.0, 0.0)]));
    }
}
