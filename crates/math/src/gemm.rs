//! Complex GEMM kernels.
//!
//! The paper's central refactoring (after Arfaoui et al. \[1\]) casts the
//! sphere decoder's per-node partial-distance evaluations as Level-3 BLAS:
//! one `R_block × S` product evaluates *all* children of a node at once.
//! This module provides the CPU-side kernels:
//!
//! * [`GemmAlgo::Naive`] — triple loop, the correctness oracle,
//! * [`GemmAlgo::Blocked`] — cache-tiled (the serial "optimized CPU" path),
//! * [`GemmAlgo::Parallel`] — rayon row-block parallel on top of tiling,
//!   standing in for the paper's multi-threaded Intel MKL baseline.
//!
//! All variants produce bit-wise comparable results up to floating-point
//! summation order and are cross-checked by property tests.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Cache-block edge used by the tiled kernels. 64 complex-f32 entries per
/// row-block keeps three tiles ((64×64)×3×8 B ≈ 96 KiB in f32) within L2.
const BLOCK: usize = 64;

/// Column-block edge, widened for wide-and-skinny products.
///
/// The decoder's batched node expansion is `1 × (d+1) × (B·P)`: one or two
/// rows of `A`/`C` in play and a huge streamed `n`. There the only cache
/// pressure is the `B`/`C` row traffic itself, so a larger column panel
/// amortizes the block-loop overhead; square-ish products keep the
/// classical [`BLOCK`] edge.
#[inline]
fn col_block(m: usize, k: usize) -> usize {
    if m * k <= BLOCK {
        8 * BLOCK
    } else {
        BLOCK
    }
}

/// Columns processed per unrolled iteration of the inner kernel. Eight
/// complex columns are sixteen scalar lanes — two AVX-512 registers (or
/// four AVX2 registers) of independent accumulator chains.
const UNROLL: usize = 8;

/// Register-blocked inner kernel:
/// `C[i, jj+j] += Σ_l a_blk[l] · B[ll+l, jj+j]` for the `c_row.len()`
/// columns starting at `jj`, [`UNROLL`] columns per iteration.
///
/// Each output column accumulates in ascending-`l` order starting from the
/// incoming `C` value, running [`Complex::mul_acc`]'s four fmas with the
/// per-component order preserved: the first lane pass applies the `a.re`
/// products (fmas 1 and 3), the second the `±a.im` cross products (fmas 2
/// and 4). The lanes stay in interleaved `re, im` layout, so the
/// vectorizer needs one in-pair swap per step instead of a full
/// de-interleave; lanes are independent chains, so fusing them changes
/// instruction-level parallelism, never the result bits.
#[inline]
fn micro_kernel<F: Float>(
    a_blk: &[Complex<F>],
    b_data: &[Complex<F>],
    ll: usize,
    n: usize,
    jj: usize,
    c_row: &mut [Complex<F>],
) {
    let width = c_row.len();
    let mut j = 0;
    while j + UNROLL <= width {
        let cols = &mut c_row[j..j + UNROLL];
        // Flat interleaved accumulators: [re0, im0, re1, im1, …].
        let mut acc = [F::ZERO; 2 * UNROLL];
        for v in 0..UNROLL {
            acc[2 * v] = cols[v].re;
            acc[2 * v + 1] = cols[v].im;
        }
        for (dl, &aval) in a_blk.iter().enumerate() {
            let base = (ll + dl) * n + jj + j;
            let brow = &b_data[base..base + UNROLL];
            let mut b = [F::ZERO; 2 * UNROLL];
            for v in 0..UNROLL {
                b[2 * v] = brow[v].re;
                b[2 * v + 1] = brow[v].im;
            }
            // mul_acc fmas 1 and 3: both components scaled by a.re.
            for x in 0..2 * UNROLL {
                acc[x] = aval.re.mul_add(b[x], acc[x]);
            }
            // mul_acc fmas 2 and 4: the swapped pair scaled by ∓a.im.
            let neg_im = -aval.im;
            for v in 0..UNROLL {
                acc[2 * v] = neg_im.mul_add(b[2 * v + 1], acc[2 * v]);
                acc[2 * v + 1] = aval.im.mul_add(b[2 * v], acc[2 * v + 1]);
            }
        }
        for v in 0..UNROLL {
            cols[v].re = acc[2 * v];
            cols[v].im = acc[2 * v + 1];
        }
        j += UNROLL;
    }
    // Scalar edge for the remaining columns.
    while j < width {
        let mut acc = c_row[j];
        for (dl, &aval) in a_blk.iter().enumerate() {
            Complex::mul_acc(&mut acc, aval, b_data[(ll + dl) * n + jj + j]);
        }
        c_row[j] = acc;
        j += 1;
    }
}

/// Kernel selection for [`gemm`] / [`gemm_into`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Reference triple loop.
    Naive,
    /// Cache-blocked serial kernel.
    Blocked,
    /// Cache-blocked kernel parallelized over row blocks with rayon.
    Parallel,
}

/// `C = A × B` with a freshly allocated output.
///
/// # Panics
/// If `a.cols() != b.rows()`.
pub fn gemm<F: Float>(a: &Matrix<F>, b: &Matrix<F>, algo: GemmAlgo) -> Matrix<F> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut c, algo);
    c
}

/// `C = A × B`, writing into an existing output matrix (contents are
/// overwritten). Reusing `C` avoids per-call allocation in the decoder's
/// inner loop, following the "workhorse collection" idiom.
///
/// # Panics
/// If the shapes are inconsistent.
pub fn gemm_into<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>, algo: GemmAlgo) {
    check_shapes(a, b, c);
    match algo {
        GemmAlgo::Naive => naive(a, b, c),
        GemmAlgo::Blocked => blocked(a, b, c),
        GemmAlgo::Parallel => parallel(a, b, c),
    }
}

/// `C += A × B` — the `beta = 1` accumulate form of [`gemm_into`].
///
/// Each output column keeps accumulating in ascending-`l` order *from the
/// incoming `C` value*, so seeding `C` with a product and accumulating the
/// remaining terms is bit-identical to one [`gemm_into`] over the full
/// operands — the decoder's batched expansion exploits this to evaluate
/// the shared diagonal term once per level instead of once per node.
/// `k = 0` operands are valid and leave `C` untouched.
///
/// # Panics
/// If the shapes are inconsistent.
pub fn gemm_acc_into<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>, algo: GemmAlgo) {
    check_shapes(a, b, c);
    match algo {
        GemmAlgo::Naive => naive_acc(a, b, c),
        GemmAlgo::Blocked => blocked_acc(a, b, c),
        GemmAlgo::Parallel => parallel_acc(a, b, c),
    }
}

/// `C += A × S` where `S` is given in *compressed broadcast form*: the
/// virtual operand has `S[l, ti·width + j] = values[l, ti]` for every
/// `j < width`, i.e. each entry of `values` spans `width` identical
/// columns.
///
/// This is the shape of the sphere decoder's batched tree-state matrix —
/// a node's fixed suffix symbol is shared by all `P` of its children — so
/// the kernel splats each value in-register instead of materializing (and
/// then re-streaming) the `width`-times-larger operand, turning a
/// store-port-bound assembly pass into pure fused-multiply-add work.
///
/// Every output column accumulates in ascending-`l` order from the
/// incoming `C` value with [`Complex::mul_acc`]'s fma ordering, so the
/// result is bit-identical to materializing `S` (e.g. with
/// [`crate::fill_tiles`]) and calling [`gemm_acc_into`] — a property the
/// tests assert exactly.
///
/// # Panics
/// If `a.cols() != values.rows()` or `c.shape() != (a.rows(),
/// values.cols() · width)`.
pub fn gemm_broadcast_acc_into<F: Float>(
    a: &Matrix<F>,
    values: &Matrix<F>,
    width: usize,
    c: &mut Matrix<F>,
) {
    let (m, k) = a.shape();
    let t = values.cols();
    let n = t * width;
    assert_eq!(
        k,
        values.rows(),
        "gemm_broadcast: inner dimensions differ ({m}x{k} * {}x{t})",
        values.rows()
    );
    assert_eq!(c.shape(), (m, n), "gemm_broadcast: output shape mismatch");
    let a_data = a.as_slice();
    let v_data = values.as_slice();
    let c_data = c.as_mut_slice();

    for i in 0..m {
        let c_row = &mut c_data[i * n..(i + 1) * n];
        for (ti, tile) in c_row.chunks_exact_mut(width).enumerate() {
            let mut j = 0;
            while j + UNROLL <= width {
                let cols = &mut tile[j..j + UNROLL];
                // Flat interleaved accumulators: [re0, im0, re1, im1, …].
                let mut acc = [F::ZERO; 2 * UNROLL];
                for v in 0..UNROLL {
                    acc[2 * v] = cols[v].re;
                    acc[2 * v + 1] = cols[v].im;
                }
                for l in 0..k {
                    let av = a_data[i * k + l];
                    let sv = v_data[l * t + ti];
                    let (ar, ai) = (av.re, av.im);
                    let (sr, si) = (sv.re, sv.im);
                    let nai = -ai;
                    // mul_acc fmas 1 and 3: both components scaled by a.re.
                    for v in 0..UNROLL {
                        acc[2 * v] = ar.mul_add(sr, acc[2 * v]);
                        acc[2 * v + 1] = ar.mul_add(si, acc[2 * v + 1]);
                    }
                    // mul_acc fmas 2 and 4: the swapped pair scaled by ∓a.im.
                    for v in 0..UNROLL {
                        acc[2 * v] = nai.mul_add(si, acc[2 * v]);
                        acc[2 * v + 1] = ai.mul_add(sr, acc[2 * v + 1]);
                    }
                }
                for v in 0..UNROLL {
                    cols[v].re = acc[2 * v];
                    cols[v].im = acc[2 * v + 1];
                }
                j += UNROLL;
            }
            // Scalar edge for narrow tiles.
            while j < width {
                let mut acc = tile[j];
                for l in 0..k {
                    Complex::mul_acc(&mut acc, a_data[i * k + l], v_data[l * t + ti]);
                }
                tile[j] = acc;
                j += 1;
            }
        }
    }
}

/// `C += A × S` over a *stacked* compressed-broadcast operand: `values`
/// is the horizontal concatenation of `blocks` independent column blocks
/// of `values.cols() / blocks` tiles each, and the call is bit-identical
/// to running [`gemm_broadcast_acc_into`] once per block on the matching
/// column slices of `C`.
///
/// This is the cross-subcarrier fusion lemma the block decoder relies on:
/// every output column of the broadcast kernel accumulates independently
/// (one ascending-`l` fma chain per column, no cross-column reduction), so
/// stacking the per-subcarrier tree-state blocks of a whole coherence
/// block into ONE wide operand — one kernel call per tree level instead of
/// `blocks` — cannot change a single bit of any column. The per-subcarrier
/// ȳ never enters the GEMM; it is subtracted from the finished columns
/// downstream, which is why only the shared `R` has to agree across the
/// stacked blocks. The tests pin the lemma exactly.
///
/// # Panics
/// If the [`gemm_broadcast_acc_into`] shapes are inconsistent, or
/// `values.cols()` is not a multiple of `blocks` (`blocks == 0` counts as
/// inconsistent).
pub fn gemm_broadcast_acc_stacked_into<F: Float>(
    a: &Matrix<F>,
    values: &Matrix<F>,
    width: usize,
    blocks: usize,
    c: &mut Matrix<F>,
) {
    assert!(
        blocks > 0 && values.cols().is_multiple_of(blocks),
        "gemm_broadcast stacked: {} tiles do not split into {blocks} blocks",
        values.cols()
    );
    gemm_broadcast_acc_into(a, values, width, c);
}

fn check_shapes<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &Matrix<F>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        c.shape(),
        (a.rows(), b.cols()),
        "gemm: output shape mismatch"
    );
}

/// Number of real floating-point operations a complex `m×k × k×n` GEMM
/// performs (4 real mul + 4 real add per complex MAC).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    8 * (m as u64) * (k as u64) * (n as u64)
}

fn naive<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    for x in c.as_mut_slice() {
        *x = Complex::zero();
    }
    naive_acc(a, b, c);
}

fn naive_acc<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[(i, j)];
            for l in 0..k {
                Complex::mul_acc(&mut acc, a[(i, l)], b[(l, j)]);
            }
            c[(i, j)] = acc;
        }
    }
}

/// Tiled i-k-j loop order: the innermost loop streams a row of `B` and a row
/// of `C`, which are both contiguous in row-major layout.
fn blocked<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    for x in c.as_mut_slice() {
        *x = Complex::zero();
    }
    blocked_acc(a, b, c);
}

fn blocked_acc<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    let jb = col_block(m, k);
    for ii in (0..m).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(m);
        for ll in (0..k).step_by(BLOCK) {
            let l_end = (ll + BLOCK).min(k);
            for jj in (0..n).step_by(jb) {
                let j_end = (jj + jb).min(n);
                for i in ii..i_end {
                    let a_blk = &a_data[i * k + ll..i * k + l_end];
                    let c_row = &mut c_data[i * n + jj..i * n + j_end];
                    micro_kernel(a_blk, b_data, ll, n, jj, c_row);
                }
            }
        }
    }
}

/// Row-block parallel kernel: each rayon task owns a disjoint slab of `C`,
/// so no synchronization is needed inside the hot loop.
fn parallel<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, n) = (a.rows(), b.cols());
    let k = a.cols();
    // For small problems the fork/join overhead dominates; fall back.
    if m * n * k < 32 * 32 * 32 {
        blocked(a, b, c);
        return;
    }
    for x in c.as_mut_slice() {
        *x = Complex::zero();
    }
    parallel_slabs(a, b, c);
}

fn parallel_acc<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, n) = (a.rows(), b.cols());
    let k = a.cols();
    if m * n * k < 32 * 32 * 32 {
        blocked_acc(a, b, c);
        return;
    }
    parallel_slabs(a, b, c);
}

fn parallel_slabs<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    c.as_mut_slice()
        .par_chunks_mut(BLOCK * n)
        .enumerate()
        .for_each(|(chunk_idx, c_slab)| {
            let row0 = chunk_idx * BLOCK;
            let rows_here = c_slab.len() / n;
            let jb = col_block(m, k);
            for ll in (0..k).step_by(BLOCK) {
                let l_end = (ll + BLOCK).min(k);
                for jj in (0..n).step_by(jb) {
                    let j_end = (jj + jb).min(n);
                    for di in 0..rows_here {
                        let i = row0 + di;
                        let a_blk = &a_data[i * k + ll..i * k + l_end];
                        let c_row = &mut c_slab[di * n + jj..di * n + j_end];
                        micro_kernel(a_blk, b_data, ll, n, jj, c_row);
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;

    fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> M {
        Matrix::from_fn(rows, cols, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn small_known_product() {
        // [1 i; 0 2] * [1 0; 3 -i] = [1+3i, -i*i=1... compute explicitly]
        let a = M::from_rows_f64(&[vec![(1.0, 0.0), (0.0, 1.0)], vec![(0.0, 0.0), (2.0, 0.0)]]);
        let b = M::from_rows_f64(&[vec![(1.0, 0.0), (0.0, 0.0)], vec![(3.0, 0.0), (0.0, -1.0)]]);
        let c = gemm(&a, &b, GemmAlgo::Naive);
        // c00 = 1*1 + i*3 = 1+3i ; c01 = 1*0 + i*(-i) = 1
        // c10 = 2*3 = 6 ; c11 = 2*(-i) = -2i
        assert_eq!(c[(0, 0)], Complex::new(1.0, 3.0));
        assert_eq!(c[(0, 1)], Complex::new(1.0, 0.0));
        assert_eq!(c[(1, 0)], Complex::new(6.0, 0.0));
        assert_eq!(c[(1, 1)], Complex::new(0.0, -2.0));
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 9, 33),
            (65, 70, 67),
            (128, 64, 1),
        ] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c0 = gemm(&a, &b, GemmAlgo::Naive);
            let c1 = gemm(&a, &b, GemmAlgo::Blocked);
            assert!(
                c0.approx_eq(&c1, 1e-10),
                "blocked mismatch at {m}x{k}x{n}: {:?}",
                c0.max_abs_diff(&c1)
            );
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, k, n) in &[(2, 2, 2), (40, 40, 40), (100, 33, 77), (130, 5, 260)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c0 = gemm(&a, &b, GemmAlgo::Naive);
            let c2 = gemm(&a, &b, GemmAlgo::Parallel);
            assert!(c0.approx_eq(&c2, 1e-10), "parallel mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_into_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(8, 8, &mut rng);
        let b = random_matrix(8, 8, &mut rng);
        let mut c = Matrix::zeros(8, 8);
        // Pre-poison the buffer to prove it is fully overwritten.
        c[(3, 3)] = Complex::new(999.0, -999.0);
        gemm_into(&a, &b, &mut c, GemmAlgo::Blocked);
        let reference = gemm(&a, &b, GemmAlgo::Naive);
        assert!(c.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn flops_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 8 * 24);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_matrix(12, 12, &mut rng);
        let b = random_matrix(12, 12, &mut rng);
        let c = random_matrix(12, 12, &mut rng);
        let left = gemm(&gemm(&a, &b, GemmAlgo::Blocked), &c, GemmAlgo::Blocked);
        let right = gemm(&a, &gemm(&b, &c, GemmAlgo::Blocked), GemmAlgo::Blocked);
        assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dims_panic() {
        let a = M::zeros(2, 3);
        let b = M::zeros(2, 3);
        gemm(&a, &b, GemmAlgo::Naive);
    }

    #[test]
    fn kernels_are_bit_identical_on_decoder_shapes() {
        // The batched node expansion relies on every kernel accumulating
        // each output column in ascending-l order, so the unrolled /
        // blocked / parallel paths must match the naive oracle *exactly*,
        // not just within tolerance. Shapes cover the decoder's
        // 1×(d+1)×(B·P) products, non-multiple-of-4 edges, and k > BLOCK.
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &[
            (1, 1, 3),
            (1, 5, 4096),
            (1, 17, 1023),
            (2, 16, 513),
            (3, 70, 130),
            (65, 70, 67),
        ] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c0 = gemm(&a, &b, GemmAlgo::Naive);
            for algo in [GemmAlgo::Blocked, GemmAlgo::Parallel] {
                let c = gemm(&a, &b, algo);
                for i in 0..m {
                    for j in 0..n {
                        assert!(
                            c[(i, j)].re == c0[(i, j)].re && c[(i, j)].im == c0[(i, j)].im,
                            "{algo:?} not bit-identical at ({i},{j}) of {m}x{k}x{n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn acc_form_matches_prepended_row_bitwise() {
        // The decoder seeds C with the first inner-product term and
        // accumulates the rest: gemm_acc_into(A[:, 1..], B[1.., :]) on a
        // C pre-seeded with A[:, 0] · B[0, :] must equal one gemm_into
        // over the full operands bit for bit, for every kernel.
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, k, n) in &[(1, 9, 4096), (1, 1, 16), (2, 17, 130), (65, 70, 67)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let mut full = Matrix::zeros(m, n);
            gemm_into(&a, &b, &mut full, GemmAlgo::Naive);

            let a_tail = a.block(0, m, 1, k);
            let b_tail = b.block(1, k, 0, n);
            for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
                let mut c = Matrix::zeros(m, n);
                for i in 0..m {
                    for j in 0..n {
                        let mut seed = Complex::zero();
                        Complex::mul_acc(&mut seed, a[(i, 0)], b[(0, j)]);
                        c[(i, j)] = seed;
                    }
                }
                gemm_acc_into(&a_tail, &b_tail, &mut c, algo);
                for i in 0..m {
                    for j in 0..n {
                        assert!(
                            c[(i, j)].re == full[(i, j)].re && c[(i, j)].im == full[(i, j)].im,
                            "{algo:?} acc form not bit-identical at ({i},{j}) of {m}x{k}x{n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_form_matches_materialized_bitwise() {
        // gemm_broadcast_acc_into against the compressed operand must match
        // materializing the width-expanded S (fill_tiles) and running the
        // ordinary accumulate GEMM, bit for bit, for every kernel.
        let mut rng = StdRng::seed_from_u64(15);
        for &(m, k, t, width) in &[(1, 8, 256, 16), (1, 1, 3, 5), (2, 13, 9, 7), (3, 4, 6, 1)] {
            let a = random_matrix(m, k, &mut rng);
            let values = random_matrix(k, t, &mut rng);
            let c0 = random_matrix(m, t * width, &mut rng);

            let mut s = Matrix::zeros(k, t * width);
            for l in 0..k {
                crate::fill_tiles(
                    &mut s.as_mut_slice()[l * t * width..(l + 1) * t * width],
                    &values.as_slice()[l * t..(l + 1) * t],
                    width,
                );
            }

            let mut fast = c0.clone();
            gemm_broadcast_acc_into(&a, &values, width, &mut fast);
            for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
                let mut reference = c0.clone();
                gemm_acc_into(&a, &s, &mut reference, algo);
                for i in 0..m {
                    for j in 0..t * width {
                        assert!(
                            fast[(i, j)].re == reference[(i, j)].re
                                && fast[(i, j)].im == reference[(i, j)].im,
                            "broadcast form not bit-identical to {algo:?} at ({i},{j}) \
                             of {m}x{k}, {t} tiles of width {width}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stacked_blocks_match_per_block_calls_bitwise() {
        // The cross-subcarrier fusion lemma: ONE wide broadcast GEMM over B
        // stacked column blocks must equal B narrow broadcast GEMMs on the
        // matching column slices, bit for bit. Output columns accumulate
        // independently, so the block boundary cannot leak.
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, t, width, blocks) in &[
            (1, 8, 16, 16, 4),
            (2, 5, 3, 7, 3),
            (1, 1, 1, 1, 1),
            (3, 9, 4, 5, 2),
        ] {
            let a = random_matrix(m, k, &mut rng);
            let values = random_matrix(k, t * blocks, &mut rng);
            let c0 = random_matrix(m, t * blocks * width, &mut rng);

            let mut fused = c0.clone();
            gemm_broadcast_acc_stacked_into(&a, &values, width, blocks, &mut fused);

            let mut looped = c0.clone();
            for blk in 0..blocks {
                let mut vb = Matrix::zeros(k, t);
                let mut cb = Matrix::zeros(m, t * width);
                for l in 0..k {
                    for j in 0..t {
                        vb[(l, j)] = values[(l, blk * t + j)];
                    }
                }
                for i in 0..m {
                    for j in 0..t * width {
                        cb[(i, j)] = looped[(i, blk * t * width + j)];
                    }
                }
                gemm_broadcast_acc_into(&a, &vb, width, &mut cb);
                for i in 0..m {
                    for j in 0..t * width {
                        looped[(i, blk * t * width + j)] = cb[(i, j)];
                    }
                }
            }

            for i in 0..m {
                for j in 0..t * blocks * width {
                    assert!(
                        fused[(i, j)].re == looped[(i, j)].re
                            && fused[(i, j)].im == looped[(i, j)].im,
                        "stacked fusion not bit-identical at ({i},{j}) of \
                         {m}x{k}, {blocks} blocks of {t} tiles width {width}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "do not split")]
    fn stacked_blocks_reject_ragged_split() {
        let a = M::zeros(1, 2);
        let values = M::zeros(2, 5);
        let mut c = M::zeros(1, 10);
        gemm_broadcast_acc_stacked_into(&a, &values, 2, 3, &mut c);
    }

    #[test]
    fn broadcast_form_accepts_empty_inner_dimension() {
        // k = 0 is the decoder's root expansion: the seeded C must pass
        // through untouched.
        let mut rng = StdRng::seed_from_u64(16);
        let c0 = random_matrix(1, 32, &mut rng);
        let mut c = c0.clone();
        gemm_broadcast_acc_into(&M::zeros(1, 0), &M::zeros(0, 2), 16, &mut c);
        for j in 0..32 {
            assert_eq!(
                c[(0, j)],
                c0[(0, j)],
                "broadcast form modified C with k = 0"
            );
        }
    }

    #[test]
    fn acc_form_accepts_empty_inner_dimension() {
        // k = 0 is the decoder's root expansion: the seeded C must pass
        // through untouched.
        let mut rng = StdRng::seed_from_u64(14);
        let c0 = random_matrix(1, 16, &mut rng);
        let a = M::zeros(1, 0);
        let b = M::zeros(0, 16);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let mut c = c0.clone();
            gemm_acc_into(&a, &b, &mut c, algo);
            for j in 0..16 {
                assert_eq!(c[(0, j)], c0[(0, j)], "{algo:?} modified C with k = 0");
            }
        }
    }

    #[test]
    fn identity_product_all_algos() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(33, 33, &mut rng);
        let i = M::identity(33);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            assert!(gemm(&a, &i, algo).approx_eq(&a, 1e-12));
            assert!(gemm(&i, &a, algo).approx_eq(&a, 1e-12));
        }
    }
}
