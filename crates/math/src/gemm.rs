//! Complex GEMM kernels.
//!
//! The paper's central refactoring (after Arfaoui et al. \[1\]) casts the
//! sphere decoder's per-node partial-distance evaluations as Level-3 BLAS:
//! one `R_block × S` product evaluates *all* children of a node at once.
//! This module provides the CPU-side kernels:
//!
//! * [`GemmAlgo::Naive`] — triple loop, the correctness oracle,
//! * [`GemmAlgo::Blocked`] — cache-tiled (the serial "optimized CPU" path),
//! * [`GemmAlgo::Parallel`] — rayon row-block parallel on top of tiling,
//!   standing in for the paper's multi-threaded Intel MKL baseline.
//!
//! All variants produce bit-wise comparable results up to floating-point
//! summation order and are cross-checked by property tests.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Cache-block edge used by the tiled kernels. 64 complex-f32 entries per
/// row-block keeps three tiles ((64×64)×3×8 B ≈ 96 KiB in f32) within L2.
const BLOCK: usize = 64;

/// Kernel selection for [`gemm`] / [`gemm_into`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Reference triple loop.
    Naive,
    /// Cache-blocked serial kernel.
    Blocked,
    /// Cache-blocked kernel parallelized over row blocks with rayon.
    Parallel,
}

/// `C = A × B` with a freshly allocated output.
///
/// # Panics
/// If `a.cols() != b.rows()`.
pub fn gemm<F: Float>(a: &Matrix<F>, b: &Matrix<F>, algo: GemmAlgo) -> Matrix<F> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut c, algo);
    c
}

/// `C = A × B`, writing into an existing output matrix (contents are
/// overwritten). Reusing `C` avoids per-call allocation in the decoder's
/// inner loop, following the "workhorse collection" idiom.
///
/// # Panics
/// If the shapes are inconsistent.
pub fn gemm_into<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>, algo: GemmAlgo) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        c.shape(),
        (a.rows(), b.cols()),
        "gemm: output shape mismatch"
    );
    match algo {
        GemmAlgo::Naive => naive(a, b, c),
        GemmAlgo::Blocked => blocked(a, b, c),
        GemmAlgo::Parallel => parallel(a, b, c),
    }
}

/// Number of real floating-point operations a complex `m×k × k×n` GEMM
/// performs (4 real mul + 4 real add per complex MAC).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    8 * (m as u64) * (k as u64) * (n as u64)
}

fn naive<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Complex::zero();
            for l in 0..k {
                Complex::mul_acc(&mut acc, a[(i, l)], b[(l, j)]);
            }
            c[(i, j)] = acc;
        }
    }
}

/// Tiled i-k-j loop order: the innermost loop streams a row of `B` and a row
/// of `C`, which are both contiguous in row-major layout.
fn blocked<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    for x in c.as_mut_slice() {
        *x = Complex::zero();
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    for ii in (0..m).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(m);
        for ll in (0..k).step_by(BLOCK) {
            let l_end = (ll + BLOCK).min(k);
            for jj in (0..n).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    let a_row = &a_data[i * k..(i + 1) * k];
                    let c_row = &mut c_data[i * n + jj..i * n + j_end];
                    for l in ll..l_end {
                        let aval = a_row[l];
                        let b_row = &b_data[l * n + jj..l * n + j_end];
                        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                            Complex::mul_acc(cv, aval, *bv);
                        }
                    }
                }
            }
        }
    }
}

/// Row-block parallel kernel: each rayon task owns a disjoint slab of `C`,
/// so no synchronization is needed inside the hot loop.
fn parallel<F: Float>(a: &Matrix<F>, b: &Matrix<F>, c: &mut Matrix<F>) {
    let (m, k) = a.shape();
    let n = b.cols();
    // For small problems the fork/join overhead dominates; fall back.
    if m * n * k < 32 * 32 * 32 {
        blocked(a, b, c);
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    c.as_mut_slice()
        .par_chunks_mut(BLOCK * n)
        .enumerate()
        .for_each(|(chunk_idx, c_slab)| {
            let row0 = chunk_idx * BLOCK;
            let rows_here = c_slab.len() / n;
            for x in c_slab.iter_mut() {
                *x = Complex::zero();
            }
            for ll in (0..k).step_by(BLOCK) {
                let l_end = (ll + BLOCK).min(k);
                for jj in (0..n).step_by(BLOCK) {
                    let j_end = (jj + BLOCK).min(n);
                    for di in 0..rows_here {
                        let i = row0 + di;
                        let a_row = &a_data[i * k..(i + 1) * k];
                        let c_row = &mut c_slab[di * n + jj..di * n + j_end];
                        for l in ll..l_end {
                            let aval = a_row[l];
                            let b_row = &b_data[l * n + jj..l * n + j_end];
                            for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                                Complex::mul_acc(cv, aval, *bv);
                            }
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;

    fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> M {
        Matrix::from_fn(rows, cols, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn small_known_product() {
        // [1 i; 0 2] * [1 0; 3 -i] = [1+3i, -i*i=1... compute explicitly]
        let a = M::from_rows_f64(&[vec![(1.0, 0.0), (0.0, 1.0)], vec![(0.0, 0.0), (2.0, 0.0)]]);
        let b = M::from_rows_f64(&[vec![(1.0, 0.0), (0.0, 0.0)], vec![(3.0, 0.0), (0.0, -1.0)]]);
        let c = gemm(&a, &b, GemmAlgo::Naive);
        // c00 = 1*1 + i*3 = 1+3i ; c01 = 1*0 + i*(-i) = 1
        // c10 = 2*3 = 6 ; c11 = 2*(-i) = -2i
        assert_eq!(c[(0, 0)], Complex::new(1.0, 3.0));
        assert_eq!(c[(0, 1)], Complex::new(1.0, 0.0));
        assert_eq!(c[(1, 0)], Complex::new(6.0, 0.0));
        assert_eq!(c[(1, 1)], Complex::new(0.0, -2.0));
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 33), (65, 70, 67), (128, 64, 1)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c0 = gemm(&a, &b, GemmAlgo::Naive);
            let c1 = gemm(&a, &b, GemmAlgo::Blocked);
            assert!(
                c0.approx_eq(&c1, 1e-10),
                "blocked mismatch at {m}x{k}x{n}: {:?}",
                c0.max_abs_diff(&c1)
            );
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, k, n) in &[(2, 2, 2), (40, 40, 40), (100, 33, 77), (130, 5, 260)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let c0 = gemm(&a, &b, GemmAlgo::Naive);
            let c2 = gemm(&a, &b, GemmAlgo::Parallel);
            assert!(c0.approx_eq(&c2, 1e-10), "parallel mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_into_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(8, 8, &mut rng);
        let b = random_matrix(8, 8, &mut rng);
        let mut c = Matrix::zeros(8, 8);
        // Pre-poison the buffer to prove it is fully overwritten.
        c[(3, 3)] = Complex::new(999.0, -999.0);
        gemm_into(&a, &b, &mut c, GemmAlgo::Blocked);
        let reference = gemm(&a, &b, GemmAlgo::Naive);
        assert!(c.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn flops_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 8 * 24);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_matrix(12, 12, &mut rng);
        let b = random_matrix(12, 12, &mut rng);
        let c = random_matrix(12, 12, &mut rng);
        let left = gemm(&gemm(&a, &b, GemmAlgo::Blocked), &c, GemmAlgo::Blocked);
        let right = gemm(&a, &gemm(&b, &c, GemmAlgo::Blocked), GemmAlgo::Blocked);
        assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dims_panic() {
        let a = M::zeros(2, 3);
        let b = M::zeros(2, 3);
        gemm(&a, &b, GemmAlgo::Naive);
    }

    #[test]
    fn identity_product_all_algos() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(33, 33, &mut rng);
        let i = M::identity(33);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            assert!(gemm(&a, &i, algo).approx_eq(&a, 1e-12));
            assert!(gemm(&i, &a, algo).approx_eq(&a, 1e-12));
        }
    }
}
