//! Bulk slice helpers for the decoder's hot loops.

use crate::complex::Complex;
use crate::float::Float;

/// Fill `row` with `values[i]` repeated `width` times each:
/// `row[i·width .. (i+1)·width] = values[i]`.
///
/// This is the broadcast write pattern of the batched node expansion: one
/// suffix symbol splatted across a node's `P` columns. The splat goes
/// through a flat scalar view of the slice because `slice::fill` on a
/// two-field struct compiles to one 16-byte store per element — the store
/// port then caps throughput — while the flat interleaved loop vectorizes
/// to full-width register stores.
///
/// # Panics
/// If `row.len() != values.len() * width`.
pub fn fill_tiles<F: Float>(row: &mut [Complex<F>], values: &[Complex<F>], width: usize) {
    assert_eq!(row.len(), values.len() * width, "tile shape mismatch");
    // SAFETY: `Complex<F>` is `repr(C)` with fields `[re, im]`, so a slice
    // of `row.len()` complexes is layout-identical to a slice of
    // `2 · row.len()` scalars; the flat view writes exactly the bytes the
    // typed view would, and the borrow is released before `row` is usable
    // again.
    let flat = unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr() as *mut F, row.len() * 2) };
    for (tile, v) in flat.chunks_exact_mut(2 * width).zip(values) {
        let (re, im) = (v.re, v.im);
        for pair in tile.chunks_exact_mut(2) {
            pair[0] = re;
            pair[1] = im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_per_tile_fill() {
        let values: Vec<Complex<f64>> = (0..7)
            .map(|i| Complex::new(i as f64 + 0.5, -(i as f64)))
            .collect();
        for width in [1, 2, 3, 16] {
            let mut fast = vec![Complex::<f64>::zero(); values.len() * width];
            let mut slow = fast.clone();
            fill_tiles(&mut fast, &values, width);
            for (tile, v) in slow.chunks_exact_mut(width).zip(&values) {
                tile.fill(*v);
            }
            assert_eq!(fast, slow, "width {width}");
        }
    }

    #[test]
    fn works_in_f32() {
        let values = [Complex::<f32>::new(1.25, -2.0), Complex::new(0.0, 3.5)];
        let mut row = vec![Complex::<f32>::zero(); 8];
        fill_tiles(&mut row, &values, 4);
        assert!(row[..4].iter().all(|&c| c == values[0]));
        assert!(row[4..].iter().all(|&c| c == values[1]));
    }

    #[test]
    #[should_panic(expected = "tile shape mismatch")]
    fn rejects_bad_shape() {
        let values = [Complex::<f64>::zero()];
        let mut row = vec![Complex::<f64>::zero(); 3];
        fill_tiles(&mut row, &values, 2);
    }
}
