//! Singular-value and condition-number estimation.
//!
//! Sphere-decoder complexity is governed by the conditioning of the
//! channel: a near-singular `H` flattens the PD landscape and inflates
//! the search tree (the effect behind the correlated-fading results).
//! This module estimates the extreme singular values by power iteration
//! — `σ_max` on `A^H A`, `σ_min` on `(A^H A)^{-1}` via the QR factors —
//! without forming any inverse.

use crate::complex::Complex;
use crate::float::Float;
use crate::matrix::Matrix;
use crate::qr::qr_with_qty;
use crate::solve::{back_substitute, forward_substitute_hermitian_of_upper};
use crate::vector::{norm, norm_sqr, CVector};

/// Iterations used by the `*_estimate` convenience wrappers.
pub const DEFAULT_ITERS: usize = 40;

/// Estimate the largest singular value of `a` by power iteration on
/// `A^H A` (deterministic start vector, `iters` iterations).
pub fn spectral_norm_estimate<F: Float>(a: &Matrix<F>, iters: usize) -> F {
    let (n, m) = a.shape();
    assert!(n > 0 && m > 0, "empty matrix");
    let mut v: CVector<F> = deterministic_unit(m);
    let mut lambda = F::ZERO;
    for _ in 0..iters {
        // w = A^H (A v)
        let av = a.mul_vec(&v);
        let w = a.hermitian().mul_vec(&av);
        lambda = norm(&w);
        if lambda <= F::epsilon() {
            return F::ZERO;
        }
        let inv = F::ONE / lambda;
        v = w.into_iter().map(|x| x.scale(inv)).collect();
    }
    // lambda ≈ σ_max²
    lambda.sqrt()
}

/// Estimate the smallest singular value of a square full-rank `a` by
/// inverse power iteration through its QR factors (`A^H A = R^H R`).
pub fn smallest_singular_estimate<F: Float>(a: &Matrix<F>, iters: usize) -> F {
    let (n, m) = a.shape();
    assert_eq!(n, m, "smallest_singular_estimate needs a square matrix");
    let y0 = vec![Complex::zero(); n];
    let (r, _, _) = qr_with_qty(a, &y0);
    // Guard: exact singularity shows up as a ~zero diagonal in R.
    for i in 0..n {
        if r[(i, i)].norm_sqr() <= F::epsilon() * F::epsilon() {
            return F::ZERO;
        }
    }
    let mut v: CVector<F> = deterministic_unit(n);
    let mut mu = F::ZERO;
    for _ in 0..iters {
        // Solve (R^H R) w = v: forward with R^H, back with R.
        let z = forward_substitute_hermitian_of_upper(&r, &v);
        let w = back_substitute(&r, &z);
        mu = norm(&w);
        if !mu.is_finite() || mu <= F::ZERO {
            return F::ZERO;
        }
        let inv = F::ONE / mu;
        v = w.into_iter().map(|x| x.scale(inv)).collect();
    }
    // mu ≈ 1/σ_min²
    (F::ONE / mu).sqrt()
}

/// 2-norm condition number estimate `σ_max / σ_min` of a square matrix.
/// Returns infinity for (numerically) singular inputs.
pub fn condition_estimate<F: Float>(a: &Matrix<F>, iters: usize) -> F {
    let smax = spectral_norm_estimate(a, iters);
    let smin = smallest_singular_estimate(a, iters);
    if smin <= F::ZERO {
        F::infinity()
    } else {
        smax / smin
    }
}

/// Deterministic, non-degenerate unit start vector.
fn deterministic_unit<F: Float>(n: usize) -> CVector<F> {
    let mut v: CVector<F> = (0..n)
        .map(|i| {
            Complex::new(
                F::from_f64(1.0 + (i as f64 * 0.37).sin() * 0.5),
                F::from_f64((i as f64 * 0.61).cos() * 0.5),
            )
        })
        .collect();
    let s = norm_sqr(&v).sqrt();
    let inv = F::ONE / s;
    for x in v.iter_mut() {
        *x = x.scale(inv);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type M = Matrix<f64>;
    type C = Complex<f64>;

    fn random_matrix(n: usize, seed: u64) -> M {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |_, _| {
            C::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn identity_has_unit_everything() {
        let i = M::identity(6);
        assert!((spectral_norm_estimate(&i, 20) - 1.0).abs() < 1e-10);
        assert!((smallest_singular_estimate(&i, 20) - 1.0).abs() < 1e-10);
        assert!((condition_estimate(&i, 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diagonal_matrix_known_extremes() {
        let mut d = M::zeros(4, 4);
        for (i, s) in [5.0, 3.0, 2.0, 0.5].iter().enumerate() {
            d[(i, i)] = C::new(*s, 0.0);
        }
        assert!((spectral_norm_estimate(&d, 60) - 5.0).abs() < 1e-6);
        assert!((smallest_singular_estimate(&d, 60) - 0.5).abs() < 1e-6);
        assert!((condition_estimate(&d, 60) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn unitary_factor_is_perfectly_conditioned() {
        let a = random_matrix(8, 5);
        let q = crate::qr::qr(&a).q;
        let cond = condition_estimate(&q, 40);
        assert!((cond - 1.0).abs() < 1e-8, "cond(Q) = {cond}");
    }

    #[test]
    fn scaling_does_not_change_condition() {
        let a = random_matrix(6, 6);
        let c1 = condition_estimate(&a, 50);
        let c2 = condition_estimate(&a.scale(7.5), 50);
        assert!((c1 - c2).abs() < 1e-6 * c1, "{c1} vs {c2}");
    }

    #[test]
    fn singular_matrix_reports_infinity() {
        let mut a = random_matrix(4, 7);
        // Make row 3 a copy of row 0: rank deficient.
        for j in 0..4 {
            let v = a[(0, j)];
            a[(3, j)] = v;
        }
        let cond = condition_estimate(&a, 40);
        assert!(cond > 1e12, "near-singular cond should explode: {cond}");
    }

    #[test]
    fn bounds_hold_against_frobenius() {
        // σ_max ≤ ‖A‖_F ≤ √n · σ_max.
        let a = random_matrix(7, 8);
        let smax = spectral_norm_estimate(&a, 60);
        let fro = a.frobenius_norm();
        assert!(smax <= fro + 1e-9);
        assert!(fro <= smax * (7f64).sqrt() + 1e-9);
    }

    #[test]
    fn smin_times_inverse_norm_is_one() {
        // σ_min(A) · σ_max(A⁻¹) = 1; check via solving.
        let a = random_matrix(5, 9);
        let smin = smallest_singular_estimate(&a, 80);
        assert!(smin > 0.0);
        // For any unit x: ‖A x‖ ≥ σ_min (spot check).
        let x = deterministic_unit::<f64>(5);
        let ax = a.mul_vec(&x);
        assert!(crate::vector::norm(&ax) >= smin - 1e-8);
    }
}
