//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use sd_math::{cholesky, gemm, qr, qr_with_qty, Complex, GemmAlgo, Matrix, C64};

/// Strategy: complex value with parts in [-1, 1].
fn complex_unit() -> impl Strategy<Value = C64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Complex::new(re, im))
}

/// Strategy: rows×cols matrix with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(complex_unit(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: dimension triple for GEMM shape tests.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..20, 1usize..20, 1usize..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_blocked_matches_naive((m, k, n) in dims(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, k, |_, _| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)));
        let b = Matrix::from_fn(k, n, |_, _| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)));
        let c0 = gemm(&a, &b, GemmAlgo::Naive);
        let c1 = gemm(&a, &b, GemmAlgo::Blocked);
        let c2 = gemm(&a, &b, GemmAlgo::Parallel);
        prop_assert!(c0.approx_eq(&c1, 1e-9));
        prop_assert!(c0.approx_eq(&c2, 1e-9));
    }

    #[test]
    fn gemm_distributes_over_addition(a in matrix(6, 5), b in matrix(5, 4), c in matrix(5, 4)) {
        let left = gemm(&a, &b.add(&c), GemmAlgo::Naive);
        let right = gemm(&a, &b, GemmAlgo::Naive).add(&gemm(&a, &c, GemmAlgo::Naive));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn hermitian_reverses_products(a in matrix(4, 6), b in matrix(6, 3)) {
        // (AB)^H = B^H A^H
        let lhs = gemm(&a, &b, GemmAlgo::Naive).hermitian();
        let rhs = gemm(&b.hermitian(), &a.hermitian(), GemmAlgo::Naive);
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn qr_factors_are_valid(a in matrix(8, 5)) {
        let d = qr(&a);
        // Q unitary.
        let qhq = gemm(&d.q.hermitian(), &d.q, GemmAlgo::Naive);
        prop_assert!(qhq.approx_eq(&Matrix::identity(8), 1e-8));
        // Reconstruction.
        let back = gemm(&d.q, &d.r, GemmAlgo::Naive);
        prop_assert!(back.approx_eq(&a, 1e-8));
        // Upper triangular.
        for i in 0..d.r.rows() {
            for j in 0..d.r.cols().min(i) {
                prop_assert!(d.r[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn qr_with_qty_metric_identity(
        h in matrix(7, 4),
        y in proptest::collection::vec(complex_unit(), 7),
        s in proptest::collection::vec(complex_unit(), 4),
    ) {
        // ‖y − Hs‖² == ‖ȳ − Rs‖² + tail (Eq. 4 of the paper).
        let (r, ybar, tail) = qr_with_qty(&h, &y);
        let hs = h.mul_vec(&s);
        let direct = sd_math::vector::dist_sqr(&y, &hs);
        let rs = r.mul_vec(&s);
        let reduced = sd_math::vector::dist_sqr(&ybar, &rs) + tail;
        prop_assert!((direct - reduced).abs() < 1e-8, "direct={direct} reduced={reduced}");
    }

    #[test]
    fn cholesky_of_gram_matrix_reconstructs(b in matrix(6, 6)) {
        // A = B^H B + I is always HPD.
        let mut a = gemm(&b.hermitian(), &b, GemmAlgo::Naive);
        for i in 0..6 {
            a[(i, i)] += Complex::new(1.0, 0.0);
        }
        let l = cholesky(&a).unwrap();
        let llh = gemm(&l, &l.hermitian(), GemmAlgo::Naive);
        prop_assert!(llh.approx_eq(&a, 1e-9));
    }

    #[test]
    fn norm_is_unitarily_invariant(a in matrix(6, 6), x in proptest::collection::vec(complex_unit(), 6)) {
        // ‖Qx‖ == ‖x‖ for the unitary factor of any QR.
        let d = qr(&a);
        let qx = d.q.mul_vec(&x);
        let n1 = sd_math::vector::norm_sqr(&qx);
        let n0 = sd_math::vector::norm_sqr(&x);
        prop_assert!((n1 - n0).abs() < 1e-9 * (1.0 + n0));
    }

    #[test]
    fn f16_roundtrip_is_idempotent(x in -60000.0f32..60000.0) {
        use sd_math::F16;
        let once = F16::from_f32(x);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn f16_error_bounded_by_relative_epsilon(x in -1000.0f32..1000.0) {
        use sd_math::F16;
        let h = F16::from_f32(x).to_f32();
        // Half precision: relative error ≤ 2^-11 for normal range values.
        let tol = x.abs().max(6.1e-5) * 4.9e-4;
        prop_assert!((h - x).abs() <= tol, "x={x} h={h}");
    }

    #[test]
    fn complex_field_axioms(a in complex_unit(), b in complex_unit(), c in complex_unit()) {
        // Associativity and commutativity within tolerance.
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!((lhs - rhs).abs() < 1e-12);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-15);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-12);
    }
}
