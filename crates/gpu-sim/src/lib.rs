//! # sd-gpu
//!
//! Analytic execution model of the GEMM-BFS sphere decoder of Arfaoui et
//! al. \[1\] on an NVIDIA A100 — the GPU baseline the paper compares
//! against in Fig. 11.
//!
//! We have no A100, so the baseline is split into two faithful halves:
//!
//! * the **algorithm** runs for real — [`sd_core::BfsGemmSd`] produces the
//!   decoded symbols and a [`sd_core::BfsLevelTrace`] of per-level
//!   frontier sizes and GEMM shapes;
//! * the **platform** is an analytic cost model charged over that trace:
//!   per-level kernel launches, device synchronization and host↔device
//!   transfers (the BFS radius check lives on the host in \[1\]'s design),
//!   plus a throughput term with size-dependent GEMM efficiency.
//!
//! The fixed per-level cost is *calibrated to the paper's own
//! measurement* (Fig. 11: the reproduced GPU implementation decodes a
//! 4-QAM 10×10 signal in ≈6 ms at 12 dB); the SNR shape then follows from
//! the executed node counts. This reproduces the paper's argument: the
//! level-synchronous traversal pays a synchronization tax the FPGA
//! dataflow design does not.

#![warn(missing_docs)]
#![warn(clippy::all)]

use sd_core::{BfsGemmSd, BfsLevelTrace, Detection, Detector};
use sd_wireless::{Constellation, FrameData};
use serde::{Deserialize, Serialize};

/// Cost parameters of the A100 execution model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct A100Model {
    /// Peak FP32 throughput (FLOP/s). A100: 19.5 TFLOP/s.
    pub peak_flops: f64,
    /// Fixed cost per tree level: kernel launches for the branching /
    /// GEMM / norm / prune steps, a device-wide synchronization, the
    /// host-side radius logic, and the host↔device round trip of the
    /// surviving-node list. Calibrated to Fig. 11 (≈6 ms / 10 levels at
    /// the 12 dB operating point).
    pub per_level_s: f64,
    /// Per-child marginal cost: global-memory transactions for the
    /// tree-state gather/scatter of one candidate.
    pub per_child_s: f64,
    /// PCIe bandwidth for the per-level result copies (B/s).
    pub pcie_bandwidth: f64,
}

impl A100Model {
    /// Calibrated A100 parameters (see crate docs).
    pub fn calibrated() -> Self {
        A100Model {
            peak_flops: 19.5e12,
            per_level_s: 550e-6,
            per_child_s: 25e-9,
            pcie_bandwidth: 25e9,
        }
    }

    /// GEMM efficiency for an `m × k × n` problem: small, skinny products
    /// cannot fill the SMs (roofline launch-bound regime).
    pub fn gemm_efficiency(&self, m: usize, k: usize, n: usize) -> f64 {
        let work = (m * k * n) as f64;
        // Half-efficiency point at ~2·10⁷ complex MACs (empirically where
        // cuBLAS saturates on skinny GEMMs).
        (work / (work + 2e7)).max(1e-6)
    }

    /// Seconds to execute one decode described by a BFS trace.
    pub fn execution_seconds(&self, trace: &BfsLevelTrace) -> f64 {
        let mut t = 0.0;
        for level in &trace.levels {
            let (m, k, n) = level.gemm_shape;
            let flops = 8.0 * (m * k * n) as f64;
            let gemm = flops / (self.peak_flops * self.gemm_efficiency(m, k, n));
            let copies = (level.children * 8) as f64 / self.pcie_bandwidth;
            t += self.per_level_s + gemm + copies + level.children as f64 * self.per_child_s;
        }
        t
    }
}

/// Per-decode report of the GPU model.
#[derive(Clone, Debug)]
pub struct GpuDecodeReport {
    /// Decoded symbols and search statistics (from the executed BFS).
    pub detection: Detection,
    /// Modeled wall-clock on the A100.
    pub decode_seconds: f64,
    /// The per-level trace the cost was charged over.
    pub trace: BfsLevelTrace,
}

/// The GEMM-BFS decoder of \[1\] running on the modeled A100.
#[derive(Clone, Debug)]
pub struct GpuSphereDecoder {
    bfs: BfsGemmSd<f32>,
    model: A100Model,
}

impl GpuSphereDecoder {
    /// GPU baseline with the calibrated A100 model.
    pub fn new(constellation: Constellation) -> Self {
        GpuSphereDecoder {
            bfs: BfsGemmSd::new(constellation),
            model: A100Model::calibrated(),
        }
    }

    /// Builder: override the cost model.
    pub fn with_model(mut self, model: A100Model) -> Self {
        self.model = model;
        self
    }

    /// The underlying BFS decoder (for configuration).
    pub fn bfs_mut(&mut self) -> &mut BfsGemmSd<f32> {
        &mut self.bfs
    }

    /// Decode with modeled timing.
    pub fn decode_with_report(&self, frame: &FrameData) -> GpuDecodeReport {
        let (detection, trace) = self.bfs.detect_traced(frame);
        let decode_seconds = self.model.execution_seconds(&trace);
        GpuDecodeReport {
            detection,
            decode_seconds,
            trace,
        }
    }
}

impl Detector for GpuSphereDecoder {
    fn name(&self) -> &'static str {
        "GPU GEMM-BFS (A100 model)"
    }

    fn detect(&self, frame: &FrameData) -> Detection {
        self.decode_with_report(frame).detection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn twelve_db_operating_point_near_paper() {
        // Fig. 11: ≈6 ms for 4-QAM 10×10 at 12 dB.
        let (c, frames) = frames(10, 12.0, 10, 300);
        let gpu = GpuSphereDecoder::new(c);
        let avg: f64 = frames
            .iter()
            .map(|f| gpu.decode_with_report(f).decode_seconds)
            .sum::<f64>()
            / frames.len() as f64;
        assert!(
            (3e-3..12e-3).contains(&avg),
            "modeled GPU time {avg:.2e}s should be near the paper's 6 ms"
        );
    }

    #[test]
    fn per_level_tax_dominates_at_high_snr() {
        // At 20 dB the frontier is tiny: time ≈ levels × per-level cost.
        let (c, frames) = frames(10, 20.0, 5, 301);
        let gpu = GpuSphereDecoder::new(c);
        let model = A100Model::calibrated();
        for f in &frames {
            let r = gpu.decode_with_report(f);
            let floor = r.trace.levels.len() as f64 * model.per_level_s;
            assert!(r.decode_seconds >= floor);
            assert!(r.decode_seconds < floor * 2.0, "launch tax should dominate");
        }
    }

    #[test]
    fn lower_snr_costs_more() {
        let (c, lo) = frames(10, 4.0, 8, 302);
        let (_, hi) = frames(10, 16.0, 8, 302);
        let gpu = GpuSphereDecoder::new(c);
        let t_lo: f64 = lo
            .iter()
            .map(|f| gpu.decode_with_report(f).decode_seconds)
            .sum();
        let t_hi: f64 = hi
            .iter()
            .map(|f| gpu.decode_with_report(f).decode_seconds)
            .sum();
        assert!(
            t_lo > t_hi,
            "4 dB ({t_lo}) must cost more than 16 dB ({t_hi})"
        );
    }

    #[test]
    fn decodes_are_ml_exact_when_uncapped() {
        let (c, frames) = frames(5, 8.0, 10, 303);
        let gpu = GpuSphereDecoder::new(c.clone());
        let ml = sd_core::MlDetector::new(c);
        for f in &frames {
            assert_eq!(gpu.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn gemm_efficiency_monotone_in_size() {
        let m = A100Model::calibrated();
        assert!(m.gemm_efficiency(1, 10, 100) < m.gemm_efficiency(1, 10, 1_000_000));
        assert!(m.gemm_efficiency(4096, 4096, 4096) > 0.8);
        assert!(m.gemm_efficiency(1, 1, 1) > 0.0);
    }

    #[test]
    fn restarted_traces_charge_final_attempt() {
        // The trace only holds the final successful BFS sweep's levels
        // (plus the aborted prefix); execution time must stay positive
        // and finite.
        let (c, frames) = frames(6, 4.0, 5, 304);
        let mut gpu = GpuSphereDecoder::new(c);
        *gpu.bfs_mut() = gpu
            .bfs
            .clone()
            .with_initial_radius(sd_core::InitialRadius::ScaledNoise(0.05));
        for f in &frames {
            let r = gpu.decode_with_report(f);
            assert!(r.decode_seconds.is_finite() && r.decode_seconds > 0.0);
        }
    }
}
