//! Node-expansion and end-to-end before/after benchmarks for the arena +
//! batched-GEMM refactoring (ISSUE 1) and the subtree-parallel exact
//! decoder (ISSUE 5).
//!
//! "Before" is the seed formulation preserved in [`sd_core::reference`]:
//! every open node owns a `Vec<usize>` path (cloned per expansion) and
//! children are evaluated per node with a scalar-shaped GEMM. "After" is
//! the arena workspace: parent-linked nodes, suffix gathered straight from
//! the slab, and one seeded accumulate-GEMM per level — `E += A' × S`
//! with `S` in compressed broadcast form (`k × B`, each suffix symbol
//! spanning its node's `P` child columns) — for a whole batch of open
//! nodes.
//!
//! Unlike the other benches this one has a hand-rolled `main`: after the
//! measurements it serializes every result — plus the derived
//! before/after speedups — to `BENCH_expansion.json` in the repo root.

use criterion::{BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_core::arena::{NodeArena, NIL};
use sd_core::pd::{eval_children, eval_children_batch, PdScratch};
use sd_core::preprocess::{preprocess, BlockPrep, PrepScratch, Prepared};
use sd_core::reference::{dfs_reference, kbest_reference};
use sd_core::{
    decode_block_budgeted_into, decode_block_fused_into, DecodeBudget, Detection, EvalStrategy,
    FixedComplexitySd, KBestSd, MetricKind, ParallelSphereDecoder, PreparedDetector, QuantizedFsd,
    QuantizedKBestSd, SearchWorkspace, SphereDecoder,
};
use sd_math::fixed::{COEF_TARGET, SYM_QMAX, Y_CLAMP};
use sd_math::{fx_expand_level, fx_metric_update, GemmAlgo};
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

/// The paper's operating point: 16×16 antennas, 16-QAM.
const N_TX: usize = 16;
const MOD: Modulation = Modulation::Qam16;
/// Open nodes expanded together in the throughput benchmark.
const BATCH: usize = 256;
/// Tree depth of the expanded batch (mid-tree, so suffixes are non-trivial).
const DEPTH: usize = 8;

fn problem(seed: u64, snr_db: f64) -> (Constellation, Prepared<f64>, FrameData) {
    let c = Constellation::new(MOD);
    let sigma2 = noise_variance(snr_db, N_TX);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = FrameData::generate(N_TX, N_TX, &c, sigma2, &mut rng);
    let prep = preprocess::<f64>(&f, &c);
    (c, prep, f)
}

/// A batch of `BATCH` random open nodes at depth `DEPTH`, in both
/// representations: arena ids and owned path vectors.
fn open_nodes(prep: &Prepared<f64>) -> (NodeArena, Vec<u32>, Vec<Vec<usize>>) {
    let p = prep.order;
    let mut rng = StdRng::seed_from_u64(0x5DC0DE);
    let mut arena = NodeArena::new();
    let mut ids = Vec::with_capacity(BATCH);
    let mut paths = Vec::with_capacity(BATCH);
    for _ in 0..BATCH {
        let path: Vec<usize> = (0..DEPTH).map(|_| rng.gen_range(0..p)).collect();
        let mut id = NIL;
        for &sym in &path {
            id = arena.alloc(id, sym);
        }
        ids.push(id);
        paths.push(path);
    }
    (arena, ids, paths)
}

/// Children-per-second of one full batch expansion, before vs after.
fn bench_node_expansion(c: &mut Criterion) {
    let (_, prep, _) = problem(1, 22.0);
    let (arena, ids, paths) = open_nodes(&prep);
    let p = prep.order;

    let mut group = c.benchmark_group("expansion_16x16_qam16");
    group.sample_size(30);
    group.throughput(Throughput::Elements((BATCH * p) as u64));

    // Before: the seed expansion — clone the node's path off the open
    // list, then a per-node scalar-shaped GEMM evaluation.
    let mut scratch = PdScratch::new(p, N_TX);
    group.bench_function(BenchmarkId::new("per_node_path_clone", BATCH), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for path in &paths {
                let owned = path.clone();
                eval_children(&prep, &owned, EvalStrategy::Gemm, &mut scratch);
                acc += scratch.increments[0];
            }
            acc
        });
    });

    // After: one batched GEMM over all open nodes, suffixes gathered from
    // the arena slab.
    for (name, algo) in [
        ("batched_gemm_blocked", GemmAlgo::Blocked),
        ("batched_gemm_parallel", GemmAlgo::Parallel),
    ] {
        group.bench_function(BenchmarkId::new(name, BATCH), |b| {
            b.iter(|| {
                eval_children_batch(&prep, &arena, &ids, algo, &mut scratch);
                scratch.batch_increments[0]
            });
        });
    }

    // The fixed-point kernel on the same shape: one level's broadcast
    // suffix-MAC + per-child metric update for the whole batch, on
    // i16/i32 lanes instead of f64.
    let mut rng = StdRng::seed_from_u64(0x5DC0DE);
    let a_re: Vec<i16> = (0..DEPTH).map(|_| rng.gen_range(-2047..=2047)).collect();
    let a_im: Vec<i16> = (0..DEPTH).map(|_| rng.gen_range(-2047..=2047)).collect();
    let coef = COEF_TARGET as i32;
    let sym = SYM_QMAX as i16;
    let plane = |rng: &mut StdRng| -> Vec<i16> {
        (0..DEPTH * BATCH)
            .map(|_| rng.gen_range(-sym..=sym))
            .collect()
    };
    let (s_re, s_im) = (plane(&mut rng), plane(&mut rng));
    let seed_plane = |rng: &mut StdRng| -> Vec<i32> {
        (0..p)
            .map(|_| rng.gen_range(-coef * SYM_QMAX..=coef * SYM_QMAX))
            .collect()
    };
    let (seed_re, seed_im) = (seed_plane(&mut rng), seed_plane(&mut rng));
    let (mut w_re, mut w_im) = (vec![0i32; BATCH], vec![0i32; BATCH]);
    let mut out = vec![0i64; BATCH * p];
    group.bench_function(BenchmarkId::new("fixed_i16", BATCH), |b| {
        b.iter(|| {
            fx_expand_level(
                &a_re,
                &a_im,
                &s_re,
                &s_im,
                BATCH,
                77_000,
                -42_000,
                &seed_re,
                &seed_im,
                MetricKind::L2,
                &mut w_re,
                &mut w_im,
                &mut out,
            );
            out[0]
        });
    });
    group.finish();

    // The per-level metric update alone, per norm: the ℓ∞ variant trades
    // the two squaring multiplies for two abs/max pairs.
    let mut group = c.benchmark_group("metric_update");
    group.sample_size(30);
    group.throughput(Throughput::Elements((BATCH * p) as u64));
    let res: Vec<i32> = (0..BATCH * p)
        .map(|_| rng.gen_range(-(Y_CLAMP / 2)..=Y_CLAMP / 2))
        .collect();
    let res_im: Vec<i32> = (0..BATCH * p)
        .map(|_| rng.gen_range(-(Y_CLAMP / 2)..=Y_CLAMP / 2))
        .collect();
    for (name, metric) in [("l2", MetricKind::L2), ("linf", MetricKind::LInf)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                fx_metric_update(9_999, -7_777, &res, &res_im, metric, &mut out);
                out[0]
            });
        });
    }
    group.finish();
}

/// The fused-block operating point (ISSUE 10): the frame-serving link —
/// 8×8 antennas, 4-QAM — with a 16-wide coherence block.
const FUSE_N: usize = 8;
const FUSE_BLOCK: usize = 16;
const FUSE_K: usize = 16;

/// One coherence block: `FUSE_BLOCK` receive vectors through a single
/// channel draw (fresh transmit + noise per subcarrier).
fn coherent_block(snr_db: f64) -> (Constellation, Vec<FrameData>) {
    let c = Constellation::new(Modulation::Qam4);
    let sigma2 = noise_variance(snr_db, FUSE_N);
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let base = FrameData::generate(FUSE_N, FUSE_N, &c, sigma2, &mut rng);
    let frames = (0..FUSE_BLOCK)
        .map(|_| {
            let mut f = base.clone();
            let fresh = FrameData::generate(FUSE_N, FUSE_N, &c, sigma2, &mut rng);
            f.y = fresh.y;
            f.tx = fresh.tx;
            f
        })
        .collect();
    (c, frames)
}

/// Fused block decode vs the per-subcarrier loop over the same shared
/// preparation: identical answers (pinned by `tests/block_fused.rs`), so
/// the only difference timed here is B searches of k×K GEMMs against one
/// search of k×B·K GEMMs per level.
fn bench_block_fused(c: &mut Criterion) {
    let (constellation, frames) = coherent_block(30.0);
    let engines: Vec<(&str, Box<dyn PreparedDetector<f64>>)> = vec![
        (
            "kbest16",
            Box::new(KBestSd::<f64>::new(constellation.clone(), FUSE_K)),
        ),
        (
            "kbest16_fx",
            Box::new(QuantizedKBestSd::new(constellation.clone(), FUSE_K)),
        ),
        (
            "fsd_fx_linf",
            Box::new(QuantizedFsd::new(constellation.clone()).with_metric(MetricKind::LInf)),
        ),
    ];
    let mut scratch = PrepScratch::new();
    let mut block = BlockPrep::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let mut out = vec![Detection::default(); FUSE_BLOCK];

    let mut group = c.benchmark_group("block_fused_8x8_qam4");
    group.sample_size(30);
    group.throughput(Throughput::Elements(FUSE_BLOCK as u64));
    for (name, det) in &engines {
        // Outside the timed region: this engine must actually fuse.
        let (_, fused) = decode_block_fused_into(
            det.as_ref(),
            &frames,
            &DecodeBudget::UNLIMITED,
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut out,
        );
        assert!(fused, "{name} must take the fused path");
        group.bench_function(format!("{name}/loop"), |b| {
            b.iter(|| {
                decode_block_budgeted_into(
                    det.as_ref(),
                    &frames,
                    &DecodeBudget::UNLIMITED,
                    &mut scratch,
                    &mut block,
                    &mut prep,
                    &mut ws,
                    &mut out,
                );
                out[0].indices[0]
            });
        });
        group.bench_function(format!("{name}/fused"), |b| {
            b.iter(|| {
                decode_block_fused_into(
                    det.as_ref(),
                    &frames,
                    &DecodeBudget::UNLIMITED,
                    &mut scratch,
                    &mut block,
                    &mut prep,
                    &mut ws,
                    &mut out,
                );
                out[0].indices[0]
            });
        });
    }
    group.finish();
}

/// End-to-end decode latency at the paper's operating point.
fn bench_end_to_end(c: &mut Criterion) {
    let frames: Vec<Prepared<f64>> = (0..8).map(|i| problem(10 + i, 22.0).1).collect();
    let constellation = Constellation::new(MOD);

    let mut group = c.benchmark_group("decode_16x16_qam16");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frames.len() as u64));

    let sd: SphereDecoder<f64> = SphereDecoder::new(constellation.clone());
    let mut ws = SearchWorkspace::new();
    group.bench_function("dfs/reference", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| dfs_reference(p, f64::INFINITY, EvalStrategy::Gemm, true).indices[0])
                .sum::<usize>()
        });
    });
    group.bench_function("dfs/arena_workspace", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| sd.detect_prepared_in(p, f64::INFINITY, &mut ws).indices[0])
                .sum::<usize>()
        });
    });

    // The tentpole engine: top-L subtrees fanned over a persistent worker
    // pool pruning against one shared atomic radius. Same frames, same
    // exact answer — only the wall clock moves.
    let mut out = sd_core::Detection::default();
    for workers in [2usize, 4, 8] {
        let par: ParallelSphereDecoder<f64> =
            ParallelSphereDecoder::new(constellation.clone()).with_workers(workers);
        group.bench_function(format!("dfs/parallel{workers}"), |b| {
            b.iter(|| {
                frames
                    .iter()
                    .map(|p| {
                        par.detect_prepared_into(p, f64::INFINITY, &mut ws, &mut out);
                        out.indices[0]
                    })
                    .sum::<usize>()
            });
        });
    }

    let kb: KBestSd<f64> = KBestSd::new(constellation.clone(), 32);
    group.bench_function("kbest32/reference", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| kbest_reference(p, 32).indices[0])
                .sum::<usize>()
        });
    });
    group.bench_function("kbest32/arena_batched", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| kb.detect_prepared_in(p, f64::INFINITY, &mut ws).indices[0])
                .sum::<usize>()
        });
    });

    // The quantized rungs: the same sweeps on i16/i32 kernels.
    let kb_fx = QuantizedKBestSd::new(constellation.clone(), 32);
    group.bench_function("kbest32/fixed_i16", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| kb_fx.detect_prepared_in(p, f64::INFINITY, &mut ws).indices[0])
                .sum::<usize>()
        });
    });
    let fsd: FixedComplexitySd<f64> = FixedComplexitySd::new(constellation.clone());
    group.bench_function("fsd1/float", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| fsd.detect_prepared_in(p, f64::INFINITY, &mut ws).indices[0])
                .sum::<usize>()
        });
    });
    let fsd_fx = QuantizedFsd::new(constellation).with_metric(MetricKind::LInf);
    group.bench_function("fsd1/fixed_i16_linf", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|p| fsd_fx.detect_prepared_in(p, f64::INFINITY, &mut ws).indices[0])
                .sum::<usize>()
        });
    });
    group.finish();
}

/// ns/iter of the result whose id contains `needle`.
fn find(c: &Criterion, needle: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.id.contains(needle))
        .unwrap_or_else(|| panic!("no bench result matching {needle:?}"))
        .ns_per_iter
}

fn main() {
    let mut c = Criterion::new();
    bench_node_expansion(&mut c);
    bench_block_fused(&mut c);
    bench_end_to_end(&mut c);

    let before = find(&c, "per_node_path_clone");
    let after_blocked = find(&c, "batched_gemm_blocked");
    let after_parallel = find(&c, "batched_gemm_parallel");
    let e2e_reference = find(&c, "dfs/reference");
    let e2e_sequential = find(&c, "dfs/arena_workspace");
    let kb_before = find(&c, "kbest32/reference");
    let kb_after = find(&c, "kbest32/arena_batched");
    let kb_fixed = find(&c, "kbest32/fixed_i16");
    let fsd_float = find(&c, "fsd1/float");
    let fsd_fixed = find(&c, "fsd1/fixed_i16_linf");
    let (par_workers, par_ns) = [2usize, 4, 8]
        .map(|w| (w, find(&c, &format!("dfs/parallel{w}"))))
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let fuse = |engine: &str| {
        let loop_ns = find(&c, &format!("{engine}/loop"));
        let fused_ns = find(&c, &format!("{engine}/fused"));
        (loop_ns, fused_ns, loop_ns / fused_ns)
    };
    let fuse_kb = fuse("kbest16");
    let fuse_kb_fx = fuse("kbest16_fx");
    let fuse_fsd = fuse("fsd_fx_linf");

    let children = (BATCH * 16) as f64;
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}}}",
                r.id, r.ns_per_iter
            )
        })
        .collect();
    // The parallel rows only show their scaling on a multi-core host;
    // record how many cores this run actually had so the numbers are
    // interpretable (on 1 core the fan-out can only cost, never pay).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"config\": {{\"n_tx\": {N_TX}, \"modulation\": \"QAM16\", \"batch\": {BATCH}, \
         \"depth\": {DEPTH}, \"seed\": \"0x5DC0DE\", \"host_cores\": {cores}}},\n  \"results\": [\n{}\n  ],\n  \
         \"node_expansion\": {{\n    \
         \"before_children_per_sec\": {:.0},\n    \
         \"after_blocked_children_per_sec\": {:.0},\n    \
         \"after_parallel_children_per_sec\": {:.0},\n    \
         \"speedup_blocked\": {:.2},\n    \
         \"speedup_parallel\": {:.2}\n  }},\n  \
         \"end_to_end_dfs\": {{\"reference_ns\": {:.0}, \"before_ns\": {:.0}, \
         \"after_ns\": {:.0}, \"workers\": {}, \"speedup\": {:.2}}},\n  \
         \"end_to_end_kbest32\": {{\"before_ns\": {:.0}, \"after_ns\": {:.0}, \"speedup\": {:.2}}},\n  \
         \"quantized\": {{\"kbest32_float_ns\": {:.0}, \"kbest32_fixed_ns\": {:.0}, \
         \"kbest32_speedup\": {:.2}, \"fsd1_float_ns\": {:.0}, \"fsd1_fixed_linf_ns\": {:.0}, \
         \"fsd1_speedup\": {:.2}}},\n  \
         \"block_fused\": {{\"workload\": \"8x8 QAM4 @ 30 dB, coherence block {FUSE_BLOCK}\", \
         \"k\": {FUSE_K},\n    \
         \"kbest16\": {{\"loop_ns\": {:.0}, \"fused_ns\": {:.0}, \"speedup\": {:.2}}},\n    \
         \"kbest16_fx\": {{\"loop_ns\": {:.0}, \"fused_ns\": {:.0}, \"speedup\": {:.2}}},\n    \
         \"fsd_fx_linf\": {{\"loop_ns\": {:.0}, \"fused_ns\": {:.0}, \"speedup\": {:.2}}}\n  }}\n}}\n",
        rows.join(",\n"),
        children * 1e9 / before,
        children * 1e9 / after_blocked,
        children * 1e9 / after_parallel,
        before / after_blocked,
        before / after_parallel,
        e2e_reference,
        e2e_sequential,
        par_ns,
        par_workers,
        e2e_sequential / par_ns,
        kb_before,
        kb_after,
        kb_before / kb_after,
        kb_after,
        kb_fixed,
        kb_after / kb_fixed,
        fsd_float,
        fsd_fixed,
        fsd_float / fsd_fixed,
        fuse_kb.0,
        fuse_kb.1,
        fuse_kb.2,
        fuse_kb_fx.0,
        fuse_kb_fx.1,
        fuse_kb_fx.2,
        fuse_fsd.0,
        fuse_fsd.1,
        fuse_fsd.2,
    );

    // Walk up from the bench crate to the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("BENCH_expansion.json");
    std::fs::write(&out, &json).expect("write BENCH_expansion.json");
    eprintln!("wrote {}", out.display());
    eprintln!(
        "node expansion speedup: blocked {:.2}x, parallel {:.2}x",
        before / after_blocked,
        before / after_parallel
    );
    eprintln!(
        "end-to-end DFS: sequential {:.1} ms -> parallel{} {:.1} ms ({:.2}x)",
        e2e_sequential / 1e6,
        par_workers,
        par_ns / 1e6,
        e2e_sequential / par_ns
    );
    eprintln!(
        "fused block ({FUSE_BLOCK}x 8x8 QAM4): kbest16 {:.2}x, kbest16_fx {:.2}x, \
         fsd_fx_linf {:.2}x over the per-subcarrier loop",
        fuse_kb.2, fuse_kb_fx.2, fuse_fsd.2
    );
    eprintln!(
        "quantized: kbest32 {:.2} ms -> {:.2} ms ({:.2}x), fsd1 {:.2} ms -> {:.2} ms ({:.2}x)",
        kb_after / 1e6,
        kb_fixed / 1e6,
        kb_after / kb_fixed,
        fsd_float / 1e6,
        fsd_fixed / 1e6,
        fsd_float / fsd_fixed
    );
}
