//! Simulator throughput: how fast the cycle-approximate pipeline itself
//! runs (host wall-clock per simulated decode), plus the simulated-time
//! ratio between variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_fpga::{FpgaConfig, FpgaSphereDecoder};
use sd_wireless::montecarlo::generate_frames;
use sd_wireless::{Constellation, LinkConfig, Modulation};

fn bench_pipeline_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpga_sim");
    group.sample_size(10);
    for (label, modulation, n) in [
        ("qam4_10x10", Modulation::Qam4, 10usize),
        ("qam16_6x6", Modulation::Qam16, 6),
    ] {
        let cfg = LinkConfig::square(n, modulation, 8.0).with_frames(4);
        let constellation = Constellation::new(modulation);
        let (_, frames) = generate_frames(&cfg);
        for variant in ["baseline", "optimized"] {
            let config = if variant == "baseline" {
                FpgaConfig::baseline(modulation, n)
            } else {
                FpgaConfig::optimized(modulation, n)
            };
            let accel = FpgaSphereDecoder::new(config, constellation.clone());
            group.bench_function(BenchmarkId::new(label, variant), |bench| {
                bench.iter(|| {
                    for f in &frames {
                        std::hint::black_box(accel.decode_with_report(f));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_simulation);
criterion_main!(benches);
