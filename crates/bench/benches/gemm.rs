//! GEMM kernel benchmarks: the compute core of the paper's refactoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_math::{gemm, gemm_flops, Complex, GemmAlgo, Matrix};

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |_, _| {
        Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        for (name, algo) in [
            ("naive", GemmAlgo::Naive),
            ("blocked", GemmAlgo::Blocked),
            ("parallel", GemmAlgo::Parallel),
        ] {
            // The naive kernel is quadratically painful above 128.
            if name == "naive" && n > 128 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, n), &n, |bench, _| {
                bench.iter(|| gemm(&a, &b, algo));
            });
        }
    }
    group.finish();
}

fn bench_decoder_shaped_gemm(c: &mut Criterion) {
    // The shapes the sphere decoder actually issues: (1 × k+1 × P).
    let mut group = c.benchmark_group("gemm_decoder_shapes");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    for &(k, p) in &[(10usize, 4usize), (10, 16), (20, 4), (20, 16)] {
        let a = random_matrix(1, k, &mut rng);
        let b = random_matrix(k, p, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("row_times_children", format!("k{k}_p{p}")),
            &(k, p),
            |bench, _| bench.iter(|| gemm(&a, &b, GemmAlgo::Blocked)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_decoder_shaped_gemm);
criterion_main!(benches);
