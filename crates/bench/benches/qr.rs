//! QR preprocessing benchmarks (the per-frame setup cost of Eq. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_math::{qr, qr_with_qty, Complex, Matrix};

fn random_system(n: usize, rng: &mut StdRng) -> (Matrix<f32>, Vec<Complex<f32>>) {
    let h = Matrix::from_fn(n, n, |_, _| {
        Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let y = (0..n)
        .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    (h, y)
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    group.sample_size(30);
    for &n in &[4usize, 10, 15, 20, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (h, y) = random_system(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("full_qr", n), &n, |bench, _| {
            bench.iter(|| qr(&h));
        });
        group.bench_with_input(BenchmarkId::new("qr_with_qty", n), &n, |bench, _| {
            bench.iter(|| qr_with_qty(&h, &y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qr);
criterion_main!(benches);
