//! Closed-loop load benchmark for the `sd-serve` runtime (ISSUE 2).
//!
//! Two claims, measured end to end through the real runtime:
//!
//! 1. **Batching pays.** At saturation (the ingress queue never empties),
//!    flush-on-size-or-age batching amortizes every synchronization cost —
//!    ingress lock, response push, metrics merge — over the batch, beating
//!    the same pool running batch-size 1.
//! 2. **The ladder saves deadlines.** On an offered-load sweep past
//!    capacity, the degradation ladder (exact → K-best → MMSE, driven by
//!    the per-SNR cost model) keeps the deadline-miss rate far below the
//!    no-degradation control at the same load, trading BER for latency
//!    instead of blowing the 10 ms real-time line.
//!
//! A third scenario exercises the configurable tier registry: a custom
//! four-rung descent (exact → best-first → K-best → MMSE) built from the
//! unified [`sd_core::PreparedDetector`] engine API and run end to end at
//! overload through [`ServeRuntime::start_with_registry`].
//!
//! A fourth scenario measures channel-coherent preparation caching
//! (ISSUE 5): a workload whose requests arrive in coherence blocks
//! sharing one `H` is served with the per-worker prep cache on vs off;
//! caching skips the QR half of preparation on every hit.
//!
//! A fifth scenario measures frame-scale serving (ISSUE 7): the same
//! coherent resource-grid traffic submitted once as whole-block
//! [`sd_serve::FrameRequest`]s and once exploded to per-vector requests
//! (prep cache on — the strongest per-vector baseline). The frame path
//! pays one submit, one ladder decision, one QR and one batched
//! `ȳ = QᴴY` per block instead of per subcarrier. A companion arm
//! (ISSUE 10) reruns the comparison on a single-rung K-best registry,
//! where the frame path additionally *fuses* the block — one GEMM batch
//! per tree level for all subcarriers ([`sd_core::decode_block_fused_into`])
//! — and reports the `frames_fused` counter alongside the speedup.
//!
//! A sixth scenario measures sharded channel-affinity serving (ISSUE 8):
//! coherent, i.i.d., and whole-frame traffic each served through one
//! shard (the classic single-queue runtime) and through N affinity
//! shards with work stealing, comparing throughput and prep-cache hit
//! rate. `host_cores` is recorded so single-core results read honestly.
//!
//! A seventh scenario measures predictive admission + anytime decoding
//! (ISSUE 9): the same 2×-overload traffic served by the reactive ladder
//! (tier choice only, admit everything the bounded queue holds) and by
//! the predictive+anytime arm, which (a) sheds requests at ingress when
//! the shard's backlog, drained at its observed mean service rate, is
//! already predicted to outlast the whole deadline, and (b) fixes an
//! explicit node/deadline [`sd_core::DecodeBudget`] per decision so
//! mispredicted decodes truncate with a best-so-far answer instead of
//! blowing the deadline. Reported: deadline-miss rate, BER, predictive
//! sheds, and the truncation counters.
//!
//! Like `expansion.rs` this bench has a hand-rolled `main` that writes
//! `BENCH_serve.json` in the repo root.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::{
    BestFirstSd, KBestSd, MmseDetector, PreparedDetector, QuantizedKBestSd, SphereDecoder,
};
use sd_serve::{
    build_coherent_requests, build_frame_requests, default_core_allowance, explode_frames,
    host_cores, run_frame_load, run_load, run_request_stream, BatchPolicy, DetectionRequest,
    FrameLoadConfig, FrameLoadReport, LadderConfig, LoadConfig, LoadReport, MetricsSnapshot,
    ServeConfig, ServeRuntime, Tier, TierCostClass,
};
use sd_wireless::{
    noise_variance, Channel, Constellation, FrameData, GridConfig, Modulation, TxFrame,
    REAL_TIME_BUDGET,
};
use std::time::{Duration, Instant};

/// Workers in every scenario: the host's core allowance (the old
/// hardcoded 4 oversubscribed small hosts and left big ones idle).
fn workers() -> usize {
    default_core_allowance()
}
/// Requests per measured run.
const N_REQUESTS: usize = 4000;
/// Bounded ingress queue for the sweep (deep enough that a saturated
/// backlog alone costs more than the deadline: at the ~110 k/s exact
/// capacity measured here, 2048 queued requests are ~19 ms of wait).
const SWEEP_QUEUE: usize = 2048;
/// Offered-load multipliers applied to the measured saturation capacity.
const LOAD_MULTS: [f64; 3] = [0.5, 1.0, 2.0];

fn ladder(enabled: bool) -> LadderConfig {
    LadderConfig {
        enabled,
        kbest_k: 16,
        anytime: false,
    }
}

/// The predictive + anytime arm: reactive tier choice *plus* an explicit
/// up-front decode budget per decision.
fn anytime_ladder() -> LadderConfig {
    LadderConfig {
        enabled: true,
        kbest_k: 16,
        anytime: true,
    }
}

/// Small fast frames for the batching comparison: decode work is cheap,
/// so per-request synchronization is a visible fraction of service time.
fn batching_workload() -> LoadConfig {
    LoadConfig {
        n_tx: 4,
        n_rx: 4,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![12.0],
        n_requests: N_REQUESTS,
        offered_rate_hz: 0.0,
        deadline: Duration::from_secs(1),
        seed: 0xBA7C4,
    }
}

/// The sweep workload: the paper's real-time line (10 ms) over a mixed
/// SNR population at 8×8, where exact-decode cost varies strongly with
/// the operating point.
fn sweep_workload(rate_hz: f64) -> LoadConfig {
    LoadConfig {
        n_tx: 8,
        n_rx: 8,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![6.0, 10.0, 14.0],
        n_requests: N_REQUESTS,
        offered_rate_hz: rate_hz,
        deadline: REAL_TIME_BUDGET,
        seed: 0x10AD,
    }
}

/// Firehose a workload through a runtime sized to hold the whole stream
/// (saturation: the queue never empties until the run is over).
fn saturated(cfg: &LoadConfig, batch: BatchPolicy, lad: LadderConfig) -> LoadReport {
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(cfg.n_requests)
            .with_batch(batch)
            .with_ladder(lad),
        c.clone(),
    );
    let report = run_load(&rt, cfg, &c);
    rt.shutdown();
    report
}

/// One paced sweep point against a bounded queue. `predictive` switches
/// on ingress admission control (the anytime arm runs with it; the
/// reactive arms admit everything the bounded queue holds, as before).
fn sweep_point_with(rate_hz: f64, lad: LadderConfig, predictive: bool) -> LoadReport {
    let cfg = sweep_workload(rate_hz);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(SWEEP_QUEUE)
            .with_ladder(lad)
            .with_predictive_admission(predictive),
        c.clone(),
    );
    let report = run_load(&rt, &cfg, &c);
    rt.shutdown();
    report
}

/// One paced sweep point against a bounded queue (reactive admission).
fn sweep_point(rate_hz: f64, lad: LadderConfig) -> LoadReport {
    sweep_point_with(rate_hz, lad, false)
}

/// The custom descent for the registry scenario: the stock ladder with a
/// best-first rung wedged between exact and K-best.
fn four_rung_registry(c: &Constellation, k: usize) -> Vec<Tier> {
    vec![
        Tier::new(
            "exact",
            TierCostClass::Adaptive,
            Box::new(SphereDecoder::<f64>::new(c.clone())),
        ),
        Tier::new(
            "best-first",
            TierCostClass::Adaptive,
            Box::new(BestFirstSd::<f64>::new(c.clone())),
        ),
        Tier::new(
            "k-best",
            TierCostClass::fixed_kbest(k),
            Box::new(KBestSd::<f64>::new(c.clone(), k)),
        ),
        Tier::new(
            "mmse",
            TierCostClass::Linear,
            Box::new(MmseDetector::new(c.clone())),
        ),
    ]
}

/// One paced run of the four-rung registry against a bounded queue.
fn registry_point(rate_hz: f64) -> LoadReport {
    let cfg = sweep_workload(rate_hz);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(SWEEP_QUEUE)
            .with_ladder(ladder(true)),
        four_rung_registry(&c, 16),
    );
    let report = run_load(&rt, &cfg, &c);
    rt.shutdown();
    report
}

/// Coherence block length for the prep-cache scenario: consecutive
/// requests sharing one channel matrix (fresh `y` each), as produced by a
/// block-fading channel.
const COHERENCE_BLOCK: usize = 16;

/// The prep-cache workload: 16×16 at a benign SNR, the block-fading
/// regime the cache targets — the sorted DFS expands almost nothing, so
/// the O(M³) QR half of preparation dominates per-request service time.
fn coherent_workload() -> LoadConfig {
    LoadConfig {
        n_tx: 16,
        n_rx: 16,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![30.0],
        n_requests: N_REQUESTS,
        offered_rate_hz: 0.0,
        deadline: Duration::from_secs(1),
        seed: 0xC0_4E7E,
    }
}

/// A block-fading request stream: one Rayleigh channel per coherence
/// block, each request in the block a fresh transmit vector through it.
fn coherent_requests(cfg: &LoadConfig, c: &Constellation) -> Vec<DetectionRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let snr = cfg.snr_grid_db[0];
    let sigma2 = noise_variance(snr, cfg.n_tx);
    let mut channel = Channel::rayleigh(cfg.n_rx, cfg.n_tx, &mut rng);
    (0..cfg.n_requests)
        .map(|i| {
            if i > 0 && i % COHERENCE_BLOCK == 0 {
                channel = Channel::rayleigh(cfg.n_rx, cfg.n_tx, &mut rng);
            }
            let tx = TxFrame::random(cfg.n_tx, c, &mut rng);
            let y = channel.transmit(&tx.symbols, sigma2, &mut rng);
            let frame = FrameData {
                h: channel.matrix().clone(),
                y,
                noise_variance: sigma2,
                tx,
            };
            DetectionRequest::new(i as u64, frame, snr, cfg.deadline)
        })
        .collect()
}

/// Firehose the coherent workload through a single-tier exact runtime with
/// the given prep-cache capacity; return (throughput, final snapshot).
fn prep_cache_point(cache: usize) -> (f64, MetricsSnapshot) {
    let cfg = coherent_workload();
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(cfg.n_requests)
            .with_prep_cache(cache)
            .with_ladder(ladder(false)),
        c.clone(),
    );
    let reqs = coherent_requests(&cfg, &c);
    let n = reqs.len();
    let t0 = Instant::now();
    for req in reqs {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    for _ in 0..n {
        rt.collect_timeout(Duration::from_secs(60))
            .expect("runtime stalled");
    }
    let throughput = n as f64 / t0.elapsed().as_secs_f64();
    let (snap, leftover, _) = rt.shutdown();
    assert!(leftover.is_empty());
    (throughput, snap)
}

/// The frame-serving workload: an 8×8 link at a benign SNR over a
/// 64-subcarrier × 256-symbol resource grid with 16×4 coherence blocks —
/// small fast decodes, so the per-request costs the frame path amortizes
/// (submit, collect, ladder decision, cost-model update, QR) are a
/// visible fraction of service time, as they are on a real base station.
fn frame_workload() -> FrameLoadConfig {
    FrameLoadConfig {
        grid: GridConfig::new(64, 256, 8, 8)
            .with_coherence(16, 4)
            .with_snr(30.0, 0.0),
        modulation: Modulation::Qam4,
        offered_rate_hz: 0.0,
        deadline: Duration::from_secs(1),
        seed: 0xF4A7E,
    }
}

/// Firehose the grid as whole-frame requests through a single-tier exact
/// runtime (one ladder decision, one QR, one batched apply per block).
fn frame_point(cfg: &FrameLoadConfig) -> FrameLoadReport {
    let c = Constellation::new(cfg.modulation);
    let n_frames = build_frame_requests(cfg, &c).len();
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(n_frames)
            .with_ladder(ladder(false)),
        c.clone(),
    );
    let report = run_frame_load(&rt, cfg, &c);
    rt.shutdown();
    report
}

/// The fused-capable rungs for the frame scenario (ISSUE 10): K-best is
/// level-synchronous and data-independent, so the frame path decodes the
/// whole coherence block with one GEMM batch per tree level
/// ([`sd_core::decode_block_fused_into`]) instead of one search per
/// subcarrier. The exact tier used by [`frame_point`] cannot fuse — its
/// tree walk is data-dependent — which is why the fused claim gets its
/// own single-rung registry. Both the float and the quantized K-best are
/// measured: fusion pays most where per-call kernel entry is expensive,
/// which is the fixed-point kernel, not the float GEMM.
fn kbest_registry(c: &Constellation, quantized: bool, k: usize) -> Vec<Tier> {
    let det: Box<dyn PreparedDetector<f64>> = if quantized {
        Box::new(QuantizedKBestSd::new(c.clone(), k))
    } else {
        Box::new(KBestSd::<f64>::new(c.clone(), k))
    };
    vec![Tier::new(
        if quantized { "k-best-fx" } else { "k-best" },
        TierCostClass::fixed_kbest(k),
        det,
    )]
}

/// Firehose the grid as whole-frame requests through a single-rung
/// K-best registry: every served block takes the fused path.
fn frame_point_fused(cfg: &FrameLoadConfig, quantized: bool) -> FrameLoadReport {
    let c = Constellation::new(cfg.modulation);
    let n_frames = build_frame_requests(cfg, &c).len();
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(n_frames)
            .with_ladder(ladder(false)),
        kbest_registry(&c, quantized, 16),
    );
    let report = run_frame_load(&rt, cfg, &c);
    rt.shutdown();
    report
}

/// The per-vector control for the fused claim: identical traffic,
/// identical K-best rung, exploded to one request per subcarrier (prep
/// cache on — the strongest per-vector baseline).
fn vector_point_kbest(cfg: &FrameLoadConfig, quantized: bool) -> LoadReport {
    let c = Constellation::new(cfg.modulation);
    let requests = explode_frames(&build_frame_requests(cfg, &c));
    let n = requests.len();
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(n)
            .with_ladder(ladder(false)),
        kbest_registry(&c, quantized, 16),
    );
    let report = run_request_stream(&rt, requests, 0.0, &c);
    rt.shutdown();
    report
}

/// Firehose the identical traffic one subcarrier at a time — the
/// strongest per-vector baseline (prep cache on at its default size).
fn vector_point(cfg: &FrameLoadConfig) -> LoadReport {
    let c = Constellation::new(cfg.modulation);
    let requests = explode_frames(&build_frame_requests(cfg, &c));
    let n = requests.len();
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers())
            .with_queue_capacity(n)
            .with_ladder(ladder(false)),
        c.clone(),
    );
    let report = run_request_stream(&rt, requests, 0.0, &c);
    rt.shutdown();
    report
}

/// Shard count for the affinity scenario: at least two, so the sharded
/// arm actually exercises routing and stealing even on a small host, up
/// to the core allowance on bigger ones.
fn affinity_shards() -> usize {
    default_core_allowance().max(2)
}

/// Firehose a coherent (or `block = 1`: i.i.d.) stream through an
/// exact-tier runtime at the given shard count; return (throughput,
/// final snapshot).
fn affinity_point(cfg: &LoadConfig, block: usize, n_shards: usize) -> (f64, MetricsSnapshot) {
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers().max(2))
            .with_shards(n_shards)
            .with_queue_capacity(cfg.n_requests * n_shards)
            .with_ladder(ladder(false)),
        c.clone(),
    );
    let reqs = build_coherent_requests(cfg, block, &c);
    let n = reqs.len();
    let t0 = Instant::now();
    for req in reqs {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    for _ in 0..n {
        rt.collect_timeout(Duration::from_secs(60))
            .expect("runtime stalled");
    }
    let throughput = n as f64 / t0.elapsed().as_secs_f64();
    let (snap, leftover, _) = rt.shutdown();
    assert!(leftover.is_empty());
    (throughput, snap)
}

/// The frame arm of the affinity scenario: whole-block submission at the
/// given shard count.
fn frame_affinity_point(cfg: &FrameLoadConfig, n_shards: usize) -> FrameLoadReport {
    let c = Constellation::new(cfg.modulation);
    let n_frames = build_frame_requests(cfg, &c).len();
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(workers().max(2))
            .with_shards(n_shards)
            .with_queue_capacity(n_frames * n_shards)
            .with_ladder(ladder(false)),
        c.clone(),
    );
    let report = run_frame_load(&rt, cfg, &c);
    rt.shutdown();
    report
}

/// Prep-cache hit rate over everything served.
fn hit_rate(s: &MetricsSnapshot) -> f64 {
    if s.served == 0 {
        0.0
    } else {
        s.prep_cache_hits as f64 / s.served as f64
    }
}

fn tiers_json(r: &LoadReport) -> String {
    let fields: Vec<String> = r
        .tiers
        .iter()
        .map(|(label, n)| format!("\"{label}\": {n}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn tiers_human(r: &LoadReport) -> String {
    let fields: Vec<String> = r
        .tiers
        .iter()
        .map(|(label, n)| format!("{label}={n}"))
        .collect();
    fields.join(" ")
}

fn report_json(r: &LoadReport) -> String {
    format!(
        "{{\"offered\": {}, \"shed\": {}, \"served\": {}, \
         \"throughput_hz\": {:.0}, \"p50_latency_us\": {:.1}, \
         \"p99_latency_us\": {:.1}, \"deadline_miss_rate\": {:.4}, \
         \"tiers\": {}, \
         \"ber\": {:.5}, \"mean_batch_size\": {:.2}, \
         \"quality_exact\": {}, \"budget_exhausted\": {}, \
         \"truncated_rate\": {:.4}}}",
        r.offered,
        r.shed,
        r.served,
        r.throughput_hz,
        r.p50_latency_us,
        r.p99_latency_us,
        r.deadline_miss_rate,
        tiers_json(r),
        r.ber(),
        r.snapshot.mean_batch_size,
        r.snapshot.quality_exact,
        r.snapshot.budget_exhausted,
        r.truncated_rate(),
    )
}

fn main() {
    // -------- Claim 1: batching vs batch-size-1 at saturation ----------
    let wl = batching_workload();
    eprintln!("batching: warm-up ...");
    saturated(
        &LoadConfig {
            n_requests: 500,
            ..wl.clone()
        },
        BatchPolicy::default(),
        ladder(false),
    );
    eprintln!("batching: batch-size 1 (control) ...");
    let unbatched = saturated(&wl, BatchPolicy::unbatched(), ladder(false));
    eprintln!("batching: flush-on-size-or-age ...");
    let batched = saturated(&wl, BatchPolicy::default(), ladder(false));
    let batching_speedup = batched.throughput_hz / unbatched.throughput_hz;
    eprintln!(
        "saturated throughput: batched {:.0}/s vs unbatched {:.0}/s ({batching_speedup:.2}x, \
         mean batch {:.1})",
        batched.throughput_hz, unbatched.throughput_hz, batched.snapshot.mean_batch_size,
    );

    // -------- Claim 2: offered-load sweep, ladder on vs off ------------
    eprintln!("sweep: probing saturation capacity ...");
    let probe = saturated(&sweep_workload(0.0), BatchPolicy::default(), ladder(false));
    let cap_hz = probe.throughput_hz;
    eprintln!("sweep: exact-decode capacity {cap_hz:.0}/s");

    let mut sweep = Vec::new();
    for mult in LOAD_MULTS {
        let rate = mult * cap_hz;
        eprintln!("sweep: {mult}x capacity ({rate:.0}/s), ladder off ...");
        let off = sweep_point(rate, ladder(false));
        eprintln!("sweep: {mult}x capacity ({rate:.0}/s), ladder on ...");
        let on = sweep_point(rate, ladder(true));
        eprintln!(
            "  miss rate {:.1}% -> {:.1}%  (tiers on: {})",
            100.0 * off.deadline_miss_rate,
            100.0 * on.deadline_miss_rate,
            tiers_human(&on),
        );
        sweep.push((mult, rate, off, on));
    }

    let (top_mult, _, top_off, top_on) = sweep.last().unwrap();
    eprintln!(
        "at {top_mult}x load the ladder cuts deadline misses {:.1}% -> {:.1}% \
         (BER {:.4} -> {:.4})",
        100.0 * top_off.deadline_miss_rate,
        100.0 * top_on.deadline_miss_rate,
        top_off.ber(),
        top_on.ber()
    );

    // -------- Claim 3: a custom registry runs end to end ---------------
    let registry_rate = 2.0 * cap_hz;
    eprintln!("registry: four-rung descent at 2x capacity ({registry_rate:.0}/s) ...");
    let registry = registry_point(registry_rate);
    eprintln!(
        "  miss rate {:.1}%, tiers: {}",
        100.0 * registry.deadline_miss_rate,
        tiers_human(&registry),
    );

    // -------- Claim 4: channel-coherent prep caching ------------------
    eprintln!("prep cache: coherent workload (block {COHERENCE_BLOCK}), cache off ...");
    let (cache_off_hz, _) = prep_cache_point(0);
    eprintln!("prep cache: coherent workload (block {COHERENCE_BLOCK}), cache on ...");
    let (cache_on_hz, cache_snap) = prep_cache_point(8);
    let cache_speedup = cache_on_hz / cache_off_hz;
    eprintln!(
        "  throughput {cache_off_hz:.0}/s -> {cache_on_hz:.0}/s ({cache_speedup:.2}x, \
         {} hits / {} misses)",
        cache_snap.prep_cache_hits, cache_snap.prep_cache_misses,
    );

    // -------- Claim 5: frame-scale serving vs per-vector --------------
    let fw = frame_workload();
    let warmup = FrameLoadConfig {
        grid: GridConfig::new(64, 16, 8, 8)
            .with_coherence(16, 4)
            .with_snr(30.0, 0.0),
        ..fw.clone()
    };
    eprintln!("frames: warm-up ...");
    frame_point(&warmup);
    vector_point(&warmup);
    eprintln!("frames: per-vector baseline (prep cache on) ...");
    let by_vector = vector_point(&fw);
    eprintln!("frames: whole-frame submission ...");
    let by_frame = frame_point(&fw);
    let frame_speedup = by_frame.throughput_hz / by_vector.throughput_hz;
    eprintln!(
        "  subcarriers/s: per-vector {:.0} -> frames {:.0} ({frame_speedup:.2}x, \
         {:.1} subcarriers per QR)",
        by_vector.throughput_hz,
        by_frame.throughput_hz,
        by_frame.prep_amortization(),
    );

    // -------- Claim 5b: fused block decode on the frame path ----------
    let mut fused_arms = Vec::new();
    for (label, quantized) in [("k-best16", false), ("k-best-fx16", true)] {
        eprintln!("frames fused: {label} warm-up ...");
        frame_point_fused(&warmup, quantized);
        vector_point_kbest(&warmup, quantized);
        eprintln!("frames fused: {label} per-vector baseline ...");
        let by_vec = vector_point_kbest(&fw, quantized);
        eprintln!("frames fused: {label} whole-frame submission (fused) ...");
        let by_fr = frame_point_fused(&fw, quantized);
        let speedup = by_fr.throughput_hz / by_vec.throughput_hz;
        eprintln!(
            "  {label} subcarriers/s: per-vector {:.0} -> fused frames {:.0} \
             ({speedup:.2}x, {}/{} frames fused) on {} host core(s)",
            by_vec.throughput_hz,
            by_fr.throughput_hz,
            by_fr.snapshot.frames_fused,
            by_fr.served_frames,
            host_cores(),
        );
        assert_eq!(
            by_fr.snapshot.frames_fused, by_fr.served_frames,
            "every {label} frame must take the fused path"
        );
        fused_arms.push((label, by_vec, by_fr, speedup));
    }

    // -------- Claim 6: sharded channel-affinity serving ----------------
    let n_shards = affinity_shards();
    let acfg = coherent_workload();
    eprintln!("affinity: coherent block {COHERENCE_BLOCK}, 1 shard ...");
    let (coh_one_hz, coh_one) = affinity_point(&acfg, COHERENCE_BLOCK, 1);
    eprintln!("affinity: coherent block {COHERENCE_BLOCK}, {n_shards} shards ...");
    let (coh_n_hz, coh_n) = affinity_point(&acfg, COHERENCE_BLOCK, n_shards);
    eprintln!("affinity: i.i.d. channels, 1 shard ...");
    let (iid_one_hz, _) = affinity_point(&acfg, 1, 1);
    eprintln!("affinity: i.i.d. channels, {n_shards} shards ...");
    let (iid_n_hz, _) = affinity_point(&acfg, 1, n_shards);
    eprintln!("affinity: frame traffic, 1 shard ...");
    let fr_one = frame_affinity_point(&fw, 1);
    eprintln!("affinity: frame traffic, {n_shards} shards ...");
    let fr_n = frame_affinity_point(&fw, n_shards);
    let coh_stolen: u64 = coh_n.shards.iter().map(|s| s.stolen_in).sum();
    eprintln!(
        "  coherent {coh_one_hz:.0}/s -> {coh_n_hz:.0}/s ({:.2}x) at hit rate \
         {:.3} -> {:.3} ({coh_stolen} stolen); iid {iid_one_hz:.0}/s -> {iid_n_hz:.0}/s; \
         frames {:.0} -> {:.0} subcarriers/s on {} host core(s)",
        coh_n_hz / coh_one_hz,
        hit_rate(&coh_one),
        hit_rate(&coh_n),
        fr_one.throughput_hz,
        fr_n.throughput_hz,
        host_cores(),
    );

    // -------- Claim 7: predictive + anytime vs reactive at 2x ----------
    let overload_rate = 2.0 * cap_hz;
    eprintln!("anytime: 2x overload ({overload_rate:.0}/s), predictive+anytime ladder ...");
    let anytime = sweep_point_with(overload_rate, anytime_ladder(), true);
    // `top_on` is the reactive ladder at the same 2x rate — the control.
    eprintln!(
        "  miss rate reactive {:.1}% -> anytime {:.1}% (truncated {:.1}% of served, \
         {} shed on prediction, BER {:.4} -> {:.4})",
        100.0 * top_on.deadline_miss_rate,
        100.0 * anytime.deadline_miss_rate,
        100.0 * anytime.truncated_rate(),
        anytime.snapshot.rejected_predicted,
        top_on.ber(),
        anytime.ber(),
    );

    let fused_rows: Vec<String> = fused_arms
        .iter()
        .map(|(label, by_vec, by_fr, speedup)| {
            format!(
                "      \"{label}\": {{\"per_vector_throughput_hz\": {:.0}, \
                 \"frame_throughput_hz\": {:.0}, \"speedup\": {speedup:.3}, \
                 \"frames_fused\": {}, \"frames_served\": {}, \
                 \"ber_per_vector\": {:.5}, \"ber_frame\": {:.5}}}",
                by_vec.throughput_hz,
                by_fr.throughput_hz,
                by_fr.snapshot.frames_fused,
                by_fr.served_frames,
                by_vec.ber(),
                by_fr.ber(),
            )
        })
        .collect();
    let sweep_rows: Vec<String> = sweep
        .iter()
        .map(|(mult, rate, off, on)| {
            format!(
                "    {{\"load_multiplier\": {mult}, \"offered_rate_hz\": {rate:.0},\n     \
                 \"ladder_off\": {},\n     \"ladder_on\": {}}}",
                report_json(off),
                report_json(on)
            )
        })
        .collect();
    let w = workers();
    let json = format!(
        "{{\n  \"config\": {{\"workers\": {w}, \"n_requests\": {N_REQUESTS}, \
         \"sweep_queue\": {SWEEP_QUEUE}, \"deadline_ms\": 10,\n    \
         \"batching_workload\": \"4x4 QAM4 @ 12 dB\", \
         \"sweep_workload\": \"8x8 QAM4 @ {{6,10,14}} dB\"}},\n  \
         \"batching\": {{\n    \"unbatched\": {},\n    \"batched\": {},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"capacity_probe_hz\": {:.0},\n  \"sweep\": [\n{}\n  ],\n  \
         \"ladder_at_top_load\": {{\"miss_rate_off\": {:.4}, \"miss_rate_on\": {:.4}, \
         \"ber_off\": {:.5}, \"ber_on\": {:.5}}},\n  \
         \"registry_four_rung\": {{\"rungs\": [\"exact\", \"best-first\", \"k-best\", \"mmse\"], \
         \"load_multiplier\": 2.0,\n    \"report\": {}}},\n  \
         \"prep_cache\": {{\"workload\": \"16x16 QAM4 @ 30 dB\", \
         \"coherence_block\": {COHERENCE_BLOCK},\n    \
         \"throughput_off_hz\": {cache_off_hz:.0}, \"throughput_on_hz\": {cache_on_hz:.0}, \
         \"speedup\": {cache_speedup:.3},\n    \
         \"hits\": {}, \"misses\": {}, \"bypass\": {}}},\n  \
         \"frame_serving\": {{\"workload\": \"64x256 grid, 8x8 QAM4 @ 30 dB, \
         coherence 16x4\", \"host_cores\": {},\n    \
         \"frames\": {}, \"subcarriers_per_frame\": {:.0},\n    \
         \"per_vector_throughput_hz\": {:.0}, \"frame_throughput_hz\": {:.0}, \
         \"speedup\": {frame_speedup:.3},\n    \
         \"prep_factors\": {}, \"prep_amortization\": {:.1}, \
         \"ber_per_vector\": {:.5}, \"ber_frame\": {:.5},\n    \
         \"vector_hits\": {}, \"vector_misses\": {}, \"vector_bypass\": {},\n    \
         \"fused\": {{\n{}\n    }}}},\n  \
         \"sharded_affinity\": {{\"host_cores\": {}, \"n_shards\": {n_shards}, \
         \"workers\": {}, \"coherent_block\": {COHERENCE_BLOCK},\n    \
         \"coherent\": {{\"one_shard_hz\": {coh_one_hz:.0}, \"sharded_hz\": {coh_n_hz:.0}, \
         \"speedup\": {:.3}, \"hit_rate_one_shard\": {:.4}, \"hit_rate_sharded\": {:.4}, \
         \"stolen\": {coh_stolen}}},\n    \
         \"iid\": {{\"one_shard_hz\": {iid_one_hz:.0}, \"sharded_hz\": {iid_n_hz:.0}, \
         \"speedup\": {:.3}}},\n    \
         \"frames\": {{\"one_shard_hz\": {:.0}, \"sharded_hz\": {:.0}, \
         \"speedup\": {:.3}}}}},\n  \
         \"predictive_anytime\": {{\"load_multiplier\": 2.0, \
         \"offered_rate_hz\": {overload_rate:.0}, \"predictive_admission\": true,\n    \
         \"reactive\": {},\n    \"anytime\": {},\n    \
         \"miss_rate_reactive\": {:.4}, \"miss_rate_anytime\": {:.4}, \
         \"ber_reactive\": {:.5}, \"ber_anytime\": {:.5}, \
         \"anytime_truncated_rate\": {:.4}, \
         \"anytime_rejected_predicted\": {}}}\n}}\n",
        report_json(&unbatched),
        report_json(&batched),
        batching_speedup,
        cap_hz,
        sweep_rows.join(",\n"),
        top_off.deadline_miss_rate,
        top_on.deadline_miss_rate,
        top_off.ber(),
        top_on.ber(),
        report_json(&registry),
        cache_snap.prep_cache_hits,
        cache_snap.prep_cache_misses,
        cache_snap.prep_cache_bypass,
        host_cores(),
        by_frame.served_frames,
        by_frame.subcarriers as f64 / by_frame.served_frames.max(1) as f64,
        by_vector.throughput_hz,
        by_frame.throughput_hz,
        by_frame.prep_factors,
        by_frame.prep_amortization(),
        by_vector.ber(),
        by_frame.ber(),
        by_vector.snapshot.prep_cache_hits,
        by_vector.snapshot.prep_cache_misses,
        by_vector.snapshot.prep_cache_bypass,
        fused_rows.join(",\n"),
        host_cores(),
        workers().max(2),
        coh_n_hz / coh_one_hz,
        hit_rate(&coh_one),
        hit_rate(&coh_n),
        iid_n_hz / iid_one_hz,
        fr_one.throughput_hz,
        fr_n.throughput_hz,
        fr_n.throughput_hz / fr_one.throughput_hz,
        report_json(top_on),
        report_json(&anytime),
        top_on.deadline_miss_rate,
        anytime.deadline_miss_rate,
        top_on.ber(),
        anytime.ber(),
        anytime.truncated_rate(),
        anytime.snapshot.rejected_predicted,
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
}
