//! Per-decode latency of every detector — the data behind Figs. 6/8/9/10
//! measured natively on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::{
    BestFirstSd, BfsGemmSd, Detector, FixedComplexitySd, MmseDetector, MrcDetector, SphereDecoder,
    SubtreeParallelSd, ZfDetector,
};
use sd_wireless::montecarlo::generate_frames;
use sd_wireless::{Constellation, LinkConfig, Modulation};

fn bench_all_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors_10x10_qam4_8db");
    group.sample_size(10);
    let cfg = LinkConfig::square(10, Modulation::Qam4, 8.0).with_frames(16);
    let constellation = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);

    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(MrcDetector::new(constellation.clone())),
        Box::new(ZfDetector::new(constellation.clone())),
        Box::new(MmseDetector::new(constellation.clone())),
        Box::new(FixedComplexitySd::<f32>::new(constellation.clone())),
        Box::new(SphereDecoder::<f32>::new(constellation.clone())),
        Box::new(BestFirstSd::<f32>::new(constellation.clone())),
        Box::new(BfsGemmSd::<f32>::new(constellation.clone())),
        Box::new(SubtreeParallelSd::<f32>::new(constellation.clone())),
    ];
    for det in detectors {
        group.bench_function(BenchmarkId::new("decode_batch16", det.name()), |bench| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(det.detect(f));
                }
            });
        });
    }
    group.finish();
}

fn bench_sd_snr_sweep(c: &mut Criterion) {
    // The SNR shape of Figs. 6-10, measured natively.
    let mut group = c.benchmark_group("sd_snr_sweep_10x10_qam4");
    group.sample_size(10);
    let constellation = Constellation::new(Modulation::Qam4);
    let sd: SphereDecoder<f32> = SphereDecoder::new(constellation);
    for &snr in &[4.0f64, 8.0, 12.0, 16.0, 20.0] {
        let cfg = LinkConfig::square(10, Modulation::Qam4, snr).with_frames(8);
        let (_, frames) = generate_frames(&cfg);
        group.bench_with_input(BenchmarkId::new("snr_db", snr as u64), &snr, |bench, _| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(sd.detect(f));
                }
            });
        });
    }
    group.finish();
}

fn bench_sd_antenna_scaling(c: &mut Criterion) {
    // Fig. 8/9 antenna scaling, native.
    let mut group = c.benchmark_group("sd_antennas_qam4_8db");
    group.sample_size(10);
    for &n in &[4usize, 8, 10, 15, 20] {
        let cfg = LinkConfig::square(n, Modulation::Qam4, 8.0).with_frames(4);
        let constellation = Constellation::new(cfg.modulation);
        let (_, frames) = generate_frames(&cfg);
        let sd: SphereDecoder<f32> = SphereDecoder::new(constellation);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |bench, _| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(sd.detect(f));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_detectors,
    bench_sd_snr_sweep,
    bench_sd_antenna_scaling
);
criterion_main!(benches);
