//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! child sorting, evaluation strategy, initial radius, prefetching
//! (via design variants), and GEMM-engine geometry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::{Detector, EvalStrategy, InitialRadius, SphereDecoder};
use sd_fpga::{FpgaConfig, FpgaSphereDecoder};
use sd_wireless::montecarlo::generate_frames;
use sd_wireless::{Constellation, LinkConfig, Modulation};

fn frames(n: usize, snr: f64, count: usize) -> (Constellation, Vec<sd_wireless::FrameData>) {
    let cfg = LinkConfig::square(n, Modulation::Qam4, snr).with_frames(count);
    generate_frames(&cfg)
}

/// Sorted-children insertion on/off (the Geosphere ingredient).
fn bench_sorting_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_child_sorting");
    group.sample_size(10);
    let (constellation, frames) = frames(10, 8.0, 8);
    for (label, sort) in [("sorted", true), ("unsorted", false)] {
        let sd: SphereDecoder<f32> =
            SphereDecoder::new(constellation.clone()).with_sorted_children(sort);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(sd.detect(f));
                }
            });
        });
    }
    group.finish();
}

/// GEMM (compute-bound) vs incremental (memory-bound) PD evaluation.
fn bench_eval_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eval_strategy");
    group.sample_size(10);
    let (constellation, frames) = frames(12, 8.0, 8);
    for (label, eval) in [
        ("gemm", EvalStrategy::Gemm),
        ("incremental", EvalStrategy::Incremental),
    ] {
        let sd: SphereDecoder<f32> = SphereDecoder::new(constellation.clone()).with_eval(eval);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(sd.detect(f));
                }
            });
        });
    }
    group.finish();
}

/// Initial-radius policy.
fn bench_radius_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_initial_radius");
    group.sample_size(10);
    let (constellation, frames) = frames(10, 8.0, 8);
    for (label, r) in [
        ("infinite", InitialRadius::Infinite),
        ("2Nsigma2", InitialRadius::ScaledNoise(2.0)),
        ("8Nsigma2", InitialRadius::ScaledNoise(8.0)),
    ] {
        let sd: SphereDecoder<f32> =
            SphereDecoder::new(constellation.clone()).with_initial_radius(r);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                for f in &frames {
                    std::hint::black_box(sd.detect(f));
                }
            });
        });
    }
    group.finish();
}

/// Systolic-array geometry sweep: simulated decode seconds are folded
/// into the benchmark id (criterion measures host time; the simulated
/// cycle effect is printed by `repro`).
fn bench_engine_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engine_geometry");
    group.sample_size(10);
    let (constellation, frames) = frames(10, 8.0, 4);
    for (rows, cols) in [(2usize, 4usize), (4, 4), (8, 8), (16, 16)] {
        let config = FpgaConfig::optimized(Modulation::Qam4, 10).with_array(rows, cols);
        let accel = FpgaSphereDecoder::new(config, constellation.clone());
        group.bench_function(
            BenchmarkId::new("mesh", format!("{rows}x{cols}")),
            |bench| {
                bench.iter(|| {
                    for f in &frames {
                        std::hint::black_box(accel.decode_with_report(f));
                    }
                });
            },
        );
    }
    group.finish();
}

/// Half-precision future work: f16 vs f32 vs f64 decode.
fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_precision");
    group.sample_size(10);
    let (constellation, frames) = frames(8, 8.0, 8);
    let sd16: SphereDecoder<sd_math::F16> = SphereDecoder::new(constellation.clone());
    let sd32: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
    let sd64: SphereDecoder<f64> = SphereDecoder::new(constellation);
    group.bench_function("f16_software", |bench| {
        bench.iter(|| {
            for f in &frames {
                std::hint::black_box(sd16.detect(f));
            }
        });
    });
    group.bench_function("f32", |bench| {
        bench.iter(|| {
            for f in &frames {
                std::hint::black_box(sd32.detect(f));
            }
        });
    });
    group.bench_function("f64", |bench| {
        bench.iter(|| {
            for f in &frames {
                std::hint::black_box(sd64.detect(f));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sorting_ablation,
    bench_eval_strategy,
    bench_radius_policy,
    bench_engine_geometry,
    bench_precision
);
criterion_main!(benches);
