//! Report rendering: aligned console tables plus CSV files in `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Global options for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Frames per operating point.
    pub frames: usize,
    /// Fast mode trims frame counts for CI-style smoke runs.
    pub fast: bool,
    /// Base seed for all Monte-Carlo draws.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            frames: 40,
            fast: false,
            seed: 0x5D_C0DE,
        }
    }
}

impl RunOpts {
    /// Frames to use, honouring fast mode.
    pub fn frames(&self) -> usize {
        if self.fast {
            self.frames.min(8)
        } else {
            self.frames
        }
    }
}

/// One table cell.
#[derive(Clone, Debug)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// Number with fixed decimals.
    Num(f64, usize),
    /// Scientific notation.
    Sci(f64),
    /// Integer count.
    Int(u64),
    /// Empty cell.
    Blank,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(x, d) => format!("{x:.*}", d),
            Cell::Sci(x) => format!("{x:.2e}"),
            Cell::Int(x) => format!("{x}"),
            Cell::Blank => String::new(),
        }
    }

    fn csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains(',') || s.contains('"') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            _ => self.render(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x, 3)
    }
}

impl From<u64> for Cell {
    fn from(x: u64) -> Self {
        Cell::Int(x)
    }
}

/// A titled table of results.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (`table1`, `fig6`, …) — used as the CSV file name.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Commentary lines printed under the table.
    pub notes: Vec<String>,
    /// Optional pre-rendered ASCII chart printed between table and notes.
    pub chart: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Report {
    /// Start a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            chart: None,
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Attach a rendered ASCII chart (printed between the table and the
    /// notes).
    pub fn attach_chart(&mut self, chart: String) {
        self.chart = Some(chart);
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a commentary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Render the aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len();
        let mut hdr = String::new();
        for (h, w) in self.header.iter().zip(widths.iter()) {
            let _ = write!(hdr, "{h:>w$}   ");
        }
        let _ = writeln!(out, "{}", hdr.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.min(120)));
        for row in &rendered {
            let mut l = String::new();
            for (c, w) in row.iter().zip(widths.iter()) {
                let _ = write!(l, "{c:>w$}   ");
            }
            let _ = writeln!(out, "{}", l.trim_end());
        }
        if let Some(chart) = &self.chart {
            let _ = writeln!(out);
            out.push_str(chart);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        out
    }

    /// Print to stdout and write `results/<id>.csv`. Returns the CSV path.
    pub fn emit(&self) -> PathBuf {
        print!("{}", self.render());
        let dir = PathBuf::from("results");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.id));
        let mut csv = self.header.join(",");
        csv.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::csv).collect();
            csv.push_str(&line.join(","));
            csv.push('\n');
        }
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "Test", &["a", "long_header", "c"]);
        r.row(vec![Cell::Int(1), Cell::Sci(0.000123), "x".into()]);
        r.row(vec![Cell::Int(100), Cell::Num(2.5, 1), "yy".into()]);
        let s = r.render();
        assert!(s.contains("long_header"));
        assert!(s.contains("1.23e-4"));
        assert!(s.contains("2.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut r = Report::new("t", "Test", &["a", "b"]);
        r.row(vec![Cell::Int(1)]);
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(Cell::Text("a,b".into()).csv(), "\"a,b\"");
        assert_eq!(Cell::Text("plain".into()).csv(), "plain");
    }

    #[test]
    fn fast_mode_caps_frames() {
        let o = RunOpts {
            frames: 100,
            fast: true,
            seed: 0,
        };
        assert_eq!(o.frames(), 8);
        let o = RunOpts { fast: false, ..o };
        assert_eq!(o.frames(), 100);
    }
}
