//! Extension experiments beyond the paper's evaluation: the future-work
//! directions the conclusion names (half precision, multi-PE
//! parallelism, second pipelines) and robustness axes a deployment would
//! ask about (detection ordering, correlated fading, imperfect CSI,
//! K-best/soft companions).

use super::point_frames;
use crate::report::{Cell, Report, RunOpts};
use sd_core::{
    ColumnOrdering, Detector, KBestSd, MlDetector, SoftSphereDecoder, SphereDecoder,
    SubtreeParallelSd,
};
use sd_fpga::{FpgaConfig, MultiPipeline};
use sd_math::F16;
use sd_wireless::{corrupt_csi, ChannelModel, Constellation, FrameData, Modulation, TxFrame};
use std::time::Instant;

/// FP16 future work: precision vs accuracy and search effort.
pub fn ext_fp16(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_fp16",
        "Extension — half-precision decoding (paper future work)",
        &[
            "precision",
            "SNR(dB)",
            "bit errors",
            "vs f64 decisions",
            "nodes/frame",
        ],
    );
    let n = 8;
    let c = Constellation::new(Modulation::Qam4);
    let sd64: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let sd32: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    let sd16: SphereDecoder<F16> = SphereDecoder::new(c.clone());
    for &snr in &[4.0, 12.0] {
        let (_, frames) = point_frames(n, Modulation::Qam4, snr, opts.frames() * 4, opts.seed);
        let truth: Vec<_> = frames.iter().map(|f| sd64.detect(f)).collect();
        for (label, decode) in [
            (
                "f64",
                Box::new(|f: &FrameData| sd64.detect(f)) as Box<dyn Fn(&FrameData) -> _>,
            ),
            ("f32", Box::new(|f: &FrameData| sd32.detect(f))),
            ("f16 (software)", Box::new(|f: &FrameData| sd16.detect(f))),
        ] {
            let mut errs = 0u64;
            let mut disagree = 0usize;
            let mut nodes = 0u64;
            for (f, t) in frames.iter().zip(truth.iter()) {
                let d = decode(f);
                errs += f.bit_errors(&d.indices, &c);
                disagree += usize::from(d.indices != t.indices);
                nodes += d.stats.nodes_generated;
            }
            r.row(vec![
                label.into(),
                Cell::Num(snr, 0),
                Cell::Int(errs),
                Cell::Text(format!("{disagree}/{} frames differ", frames.len())),
                Cell::Num(nodes as f64 / frames.len() as f64, 1),
            ]);
        }
    }
    r.note("FP16 loses almost nothing at these operating points — supporting the paper's");
    r.note("proposal that a half-precision engine would halve DSP/memory cost safely.");
    r
}

/// Detection-order ablation.
pub fn ext_ordering(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_ordering",
        "Extension — detection-order preprocessing (V-BLAST-style)",
        &["ordering", "SNR(dB)", "nodes/frame", "vs natural"],
    );
    let n = 10;
    let c = Constellation::new(Modulation::Qam4);
    for &snr in &[4.0, 8.0] {
        let (_, frames) = point_frames(n, Modulation::Qam4, snr, opts.frames(), opts.seed);
        let mut natural_nodes = 0.0;
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::NormDescending,
            ColumnOrdering::NormAscending,
        ] {
            let sd: SphereDecoder<f32> = SphereDecoder::new(c.clone()).with_ordering(ordering);
            let nodes: u64 = frames
                .iter()
                .map(|f| sd.detect(f).stats.nodes_generated)
                .sum();
            let per_frame = nodes as f64 / frames.len() as f64;
            if ordering == ColumnOrdering::Natural {
                natural_nodes = per_frame;
            }
            r.row(vec![
                format!("{ordering:?}").into(),
                Cell::Num(snr, 0),
                Cell::Num(per_frame, 1),
                Cell::Text(format!(
                    "{:+.0}%",
                    100.0 * (per_frame / natural_nodes - 1.0)
                )),
            ]);
        }
    }
    r.note("Ordering is free at decode time (one permutation before QR). Detecting reliable");
    r.note("streams first shrinks the tree at moderate SNR; at very low SNR the effect can");
    r.note("invert (the first leaf's radius quality dominates over per-level pruning).");
    r
}

/// Second-pipeline throughput (Sec. III-C4's motivation).
pub fn ext_dualpipe(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_dualpipe",
        "Extension — multi-pipeline throughput on one U280",
        &[
            "config",
            "pipelines",
            "makespan ms",
            "frames/s",
            "scaling",
            "utilization",
        ],
    );
    let n = 10;
    let c = Constellation::new(Modulation::Qam4);
    let (_, frames) = point_frames(n, Modulation::Qam4, 8.0, opts.frames() * 2, opts.seed);
    let config = FpgaConfig::optimized(Modulation::Qam4, n);
    let max = MultiPipeline::max_pipelines(&config).min(8);
    let base_tp = MultiPipeline::new(config.clone(), c.clone(), 1)
        .decode_batch(&frames)
        .throughput();
    let mut count = 1;
    while count <= max {
        let batch = MultiPipeline::new(config.clone(), c.clone(), count).decode_batch(&frames);
        r.row(vec![
            "Optimized 4-QAM 10×10".into(),
            Cell::Int(count as u64),
            Cell::Num(batch.makespan_seconds * 1e3, 2),
            Cell::Num(batch.throughput(), 0),
            Cell::Text(format!("{:.2}×", batch.throughput() / base_tp)),
            Cell::Text(format!("{:.0}%", batch.utilization() * 100.0)),
        ]);
        count *= 2;
    }
    r.note(format!(
        "Area model allows up to {} optimized 4-QAM pipelines on one U280 (baseline 16-QAM: 1).",
        MultiPipeline::max_pipelines(&config)
    ));
    r
}

/// Multi-PE single-decode parallelism (the paper's other future work).
pub fn ext_multipe(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_multipe",
        "Extension — multi-PE sub-tree parallel SD (paper future work)",
        &[
            "decoder",
            "SNR(dB)",
            "native ms/frame",
            "nodes/frame",
            "ML-exact",
        ],
    );
    let n = 12;
    let c = Constellation::new(Modulation::Qam4);
    let serial: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    let parallel: SubtreeParallelSd<f32> = SubtreeParallelSd::new(c.clone());
    for &snr in &[4.0, 8.0] {
        let (_, frames) = point_frames(n, Modulation::Qam4, snr, opts.frames(), opts.seed);
        // Agreement check against the serial metric.
        let mut agree = true;
        for f in &frames {
            let a = serial.detect(f);
            let b = parallel.detect(f);
            agree &= (a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-4;
        }
        for (label, det) in [
            ("serial sorted-DFS", &serial as &dyn Detector),
            ("multi-PE (shared radius)", &parallel as &dyn Detector),
        ] {
            let t0 = Instant::now();
            let mut nodes = 0u64;
            for f in &frames {
                nodes += det.detect(f).stats.nodes_generated;
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / frames.len() as f64;
            r.row(vec![
                label.into(),
                Cell::Num(snr, 0),
                Cell::Num(ms, 3),
                Cell::Num(nodes as f64 / frames.len() as f64, 0),
                Cell::Text(if agree { "yes" } else { "NO" }.into()),
            ]);
        }
    }
    r.note("Sub-trees share the sphere radius through a lock-free atomic, so exactness holds");
    r.note("while single-decode latency drops — the partitioning sketched in the conclusion.");
    r
}

/// Robustness: correlated fading and imperfect CSI.
pub fn ext_robustness(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_robustness",
        "Extension — correlated fading and CSI error (deployment regime)",
        &["scenario", "BER", "nodes/frame", "vs ideal BER"],
    );
    let n = 8;
    let snr = 12.0;
    let c = Constellation::new(Modulation::Qam4);
    let sd: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    let frames_n = (opts.frames() * 25).max(200);
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let scenarios: Vec<(&str, ChannelModel, f64)> = vec![
        ("ideal (iid, perfect CSI)", ChannelModel::Iid, 0.0),
        (
            "correlated rho=0.5",
            ChannelModel::KroneckerExponential {
                rho_tx: 0.5,
                rho_rx: 0.5,
            },
            0.0,
        ),
        (
            "correlated rho=0.8",
            ChannelModel::KroneckerExponential {
                rho_tx: 0.8,
                rho_rx: 0.8,
            },
            0.0,
        ),
        ("CSI error eps=0.02", ChannelModel::Iid, 0.02),
        ("CSI error eps=0.10", ChannelModel::Iid, 0.10),
    ];
    let mut ideal_ber = 0.0;
    for (label, model, eps) in scenarios {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xC51);
        let sigma2 = sd_wireless::noise_variance(snr, n);
        let mut errs = 0u64;
        let mut bits = 0u64;
        let mut nodes = 0u64;
        for _ in 0..frames_n {
            let channel = model.realize(n, n, &mut rng);
            let tx = TxFrame::random(n, &c, &mut rng);
            let y = channel.transmit(&tx.symbols, sigma2, &mut rng);
            let mut frame = FrameData {
                h: channel.matrix().clone(),
                y,
                noise_variance: sigma2,
                tx,
            };
            corrupt_csi(&mut frame, eps, &mut rng);
            let d = sd.detect(&frame);
            errs += frame.bit_errors(&d.indices, &c);
            bits += (n * c.bits_per_symbol()) as u64;
            nodes += d.stats.nodes_generated;
        }
        let ber = errs as f64 / bits as f64;
        if eps == 0.0 && matches!(model, ChannelModel::Iid) {
            ideal_ber = ber.max(1e-9);
        }
        r.row(vec![
            label.into(),
            Cell::Sci(ber),
            Cell::Num(nodes as f64 / frames_n as f64, 0),
            Cell::Text(format!("{:.1}×", ber / ideal_ber)),
        ]);
    }
    r.note("Correlation both degrades BER and inflates the search tree (ill-conditioned R);");
    r.note("CSI error degrades BER without growing the tree — two distinct failure modes.");
    r
}

/// Coded end-to-end link: soft vs hard detection into a Viterbi decoder.
pub fn ext_coded(opts: &RunOpts) -> Report {
    use sd_core::SoftSphereDecoder;
    use sd_wireless::{noise_variance, ConvolutionalCode};
    let mut r = Report::new(
        "ext_coded",
        "Extension — coded link: soft vs hard detection (rate-1/2 K=7 + Viterbi)",
        &[
            "SNR(dB)",
            "uncoded BER",
            "coded BER (hard)",
            "coded BER (soft)",
            "soft gain",
        ],
    );
    let n = 6;
    let c = Constellation::new(Modulation::Qam4);
    let code = ConvolutionalCode::standard_k7();
    let soft: SoftSphereDecoder<f32> = SoftSphereDecoder::new(c.clone());
    let bits_per_frame = n * c.bits_per_symbol();
    let info_len = 120;
    let codewords = (opts.frames() / 2).max(6);
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for &snr in &[4.0, 6.0, 8.0] {
        let sigma2 = noise_variance(snr, n);
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xC0DE ^ snr.to_bits());
        let mut raw_errs = 0u64;
        let mut hard_errs = 0u64;
        let mut soft_errs = 0u64;
        let mut info_bits = 0u64;
        let mut coded_bits_count = 0u64;
        for _ in 0..codewords {
            let info: Vec<u8> = (0..info_len).map(|_| rng.gen_range(0..=1u8)).collect();
            let mut coded = code.encode(&info);
            // Pad to a whole number of MIMO frames.
            while !coded.len().is_multiple_of(bits_per_frame) {
                coded.push(0);
            }
            let mut llrs: Vec<f64> = Vec::with_capacity(coded.len());
            let mut hard_llrs: Vec<f64> = Vec::with_capacity(coded.len());
            for chunk in coded.chunks(bits_per_frame) {
                let tx = TxFrame::from_bits(chunk, &c);
                let channel = ChannelModel::Iid.realize(n, n, &mut rng);
                let y = channel.transmit(&tx.symbols, sigma2, &mut rng);
                let frame = FrameData {
                    h: channel.matrix().clone(),
                    y,
                    noise_variance: sigma2,
                    tx,
                };
                let s = soft.detect_soft(&frame);
                raw_errs += frame.bit_errors(&s.detection.indices, &c);
                coded_bits_count += chunk.len() as u64;
                llrs.extend_from_slice(&s.llrs);
                // Hard chain: same detections, confidence discarded.
                hard_llrs.extend(
                    s.hard_bits()
                        .iter()
                        .map(|&b| if b == 0 { 1.0 } else { -1.0 }),
                );
            }
            llrs.truncate(code.coded_len(info_len));
            hard_llrs.truncate(code.coded_len(info_len));
            let hard_out = code.viterbi_with_metrics(&hard_llrs);
            let soft_out = code.viterbi_soft(&llrs);
            hard_errs += hard_out
                .iter()
                .zip(info.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
            soft_errs += soft_out
                .iter()
                .zip(info.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
            info_bits += info_len as u64;
        }
        let raw = raw_errs as f64 / coded_bits_count as f64;
        let hard = hard_errs as f64 / info_bits as f64;
        let softr = soft_errs as f64 / info_bits as f64;
        r.row(vec![
            Cell::Num(snr, 0),
            Cell::Sci(raw),
            Cell::Sci(hard),
            Cell::Sci(softr),
            Cell::Text(if soft_errs < hard_errs {
                format!(
                    "{:.1}× fewer errors",
                    hard_errs.max(1) as f64 / soft_errs.max(1) as f64
                )
            } else {
                "—".to_string()
            }),
        ]);
    }
    r.note("The list-SD's LLRs feed the Viterbi decoder directly; discarding confidence");
    r.note("(hard decisions) costs the classic ~2 dB — why soft-output detectors matter.");
    r
}

/// MIMO-OFDM symbol decoding across FPGA pipelines.
pub fn ext_ofdm(opts: &RunOpts) -> Report {
    use sd_wireless::{noise_variance, OfdmConfig, OfdmSymbol};
    let mut r = Report::new(
        "ext_ofdm",
        "Extension — MIMO-OFDM symbol across FPGA pipelines",
        &[
            "deployment",
            "subcarriers",
            "symbol latency ms",
            "symbols/s",
            "BER",
        ],
    );
    let n = 8;
    let snr = 8.0;
    let c = Constellation::new(Modulation::Qam4);
    let cfg = OfdmConfig::new(48, n, n, 4);
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x0FD);
    let symbol = OfdmSymbol::generate(&cfg, &c, noise_variance(snr, n), &mut rng);
    let fpga_config = FpgaConfig::optimized(Modulation::Qam4, n);
    let max = MultiPipeline::max_pipelines(&fpga_config).min(8);

    let mut count = 1;
    while count <= max {
        let mp = MultiPipeline::new(fpga_config.clone(), c.clone(), count);
        let batch = mp.decode_batch(&symbol.frames);
        let mut errs = 0u64;
        let mut bits = 0u64;
        for (f, rep) in symbol.frames.iter().zip(batch.reports.iter()) {
            errs += f.bit_errors(&rep.detection.indices, &c);
            bits += f.tx.bits.len() as u64;
        }
        r.row(vec![
            format!("U280 × {count} pipeline(s)").into(),
            Cell::Int(cfg.subcarriers as u64),
            Cell::Num(batch.makespan_seconds * 1e3, 3),
            Cell::Num(1.0 / batch.makespan_seconds, 0),
            Cell::Sci(errs as f64 / bits as f64),
        ]);
        count *= 2;
    }
    r.note("Subcarriers are independent detection problems — the data parallelism the");
    r.note("paper's resource optimization was designed to unlock (Sec. III-C4).");
    r
}

/// Accuracy/throughput frontier: K-best and soft output.
pub fn ext_companions(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "ext_companions",
        "Extension — K-best and soft-output companions",
        &["decoder", "BER", "nodes/frame", "notes"],
    );
    let n = 8;
    let snr = 8.0;
    let c = Constellation::new(Modulation::Qam4);
    let frames_n = (opts.frames() * 10).max(100);
    let (_, frames) = point_frames(n, Modulation::Qam4, snr, frames_n, opts.seed);
    let ml = MlDetector::new(c.clone());
    let bits_per_frame = (n * c.bits_per_symbol()) as u64;

    let mut run = |label: &str, det: &dyn Detector, notes: &str| {
        let mut errs = 0u64;
        let mut nodes = 0u64;
        for f in &frames {
            let d = det.detect(f);
            errs += f.bit_errors(&d.indices, &c);
            nodes += d.stats.nodes_generated;
        }
        r.row(vec![
            label.into(),
            Cell::Sci(errs as f64 / (bits_per_frame * frames.len() as u64) as f64),
            Cell::Num(nodes as f64 / frames.len() as f64, 0),
            notes.into(),
        ]);
    };
    run("ML (oracle)", &ml, "exponential");
    let sd: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    run("SD sorted-DFS (paper)", &sd, "exact, variable work");
    for k in [2usize, 8, 32] {
        let kb: KBestSd<f32> = KBestSd::new(c.clone(), k);
        run(&format!("K-best K={k}"), &kb, "fixed work");
    }
    let soft: SoftSphereDecoder<f32> = SoftSphereDecoder::new(c.clone());
    run("soft-output list SD", &soft, "LLRs for coded systems");
    let rvd: sd_core::RvdSphereDecoder<f32> = sd_core::RvdSphereDecoder::new(c.clone());
    run(
        "RVD sorted-DFS (Geosphere-style)",
        &rvd,
        "2M levels, sqrt(P) branching",
    );
    let sp: sd_core::StatPruningSd<f32> = sd_core::StatPruningSd::new(c.clone(), 4.0);
    run(
        "statistical pruning [16], a=4",
        &sp,
        "near-ML, probabilistic prune",
    );
    r.note("K-best closes on ML as K grows at fixed, hardware-friendly work per level;");
    r.note("the list decoder matches ML hard decisions while emitting per-bit LLRs.");
    r
}

/// Serving layer (ISSUE 2): an offered-load sweep through the `sd-serve`
/// runtime with the degradation ladder on and off, against the paper's
/// 10 ms real-time line.
pub fn ext_serve(opts: &RunOpts) -> Report {
    use sd_serve::{run_load, LadderConfig, LoadConfig, ServeConfig, ServeRuntime};
    use sd_wireless::REAL_TIME_BUDGET;

    let mut r = Report::new(
        "ext_serve",
        "Extension — deadline-aware serving runtime (sd-serve)",
        &[
            "offered(/s)",
            "ladder",
            "served",
            "shed",
            "p99(us)",
            "miss rate",
            "exact",
            "k-best",
            "mmse",
            "BER",
        ],
    );
    let n_requests = (opts.frames() * 25).max(400);
    let base = LoadConfig {
        n_tx: 8,
        n_rx: 8,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![6.0, 10.0, 14.0],
        n_requests,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: opts.seed,
    };
    let c = Constellation::new(base.modulation);
    let ladder = |enabled| LadderConfig {
        enabled,
        kbest_k: 16,
        anytime: false,
    };
    let start = |queue: usize, enabled: bool| {
        ServeRuntime::start(
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(queue)
                .with_ladder(ladder(enabled)),
            c.clone(),
        )
    };

    // Saturation probe: exact-decode capacity of this host at this point.
    let probe_rt = start(n_requests, false);
    let cap_hz = run_load(&probe_rt, &base, &c).throughput_hz;
    probe_rt.shutdown();
    r.note(format!(
        "capacity probe: {cap_hz:.0} exact decodes/s ({} workers, 8x8 QAM4 mixed SNR)",
        2
    ));

    for mult in [0.5, 1.0, 2.0] {
        for enabled in [false, true] {
            let cfg = LoadConfig {
                offered_rate_hz: mult * cap_hz,
                ..base.clone()
            };
            let rt = start(1024, enabled);
            let rep = run_load(&rt, &cfg, &c);
            rt.shutdown();
            r.row(vec![
                Cell::Num(cfg.offered_rate_hz, 0),
                if enabled { "on" } else { "off" }.into(),
                Cell::Int(rep.served),
                Cell::Int(rep.shed),
                Cell::Num(rep.p99_latency_us, 0),
                Cell::Num(rep.deadline_miss_rate, 3),
                Cell::Int(rep.tier_count("exact")),
                Cell::Int(rep.tier_count("k-best")),
                Cell::Int(rep.tier_count("mmse")),
                Cell::Sci(rep.ber()),
            ]);
        }
    }
    r.note("past capacity the ladder trades BER for latency: degraded rungs drain the");
    r.note("backlog so the deadline-miss rate stays below the no-degradation control.");
    r
}
