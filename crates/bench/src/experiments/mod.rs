//! Experiment registry: one entry per table/figure of the paper.

pub mod extensions;
pub mod figures;
pub mod tables;

use crate::report::{Report, RunOpts};
use crate::CpuTimeModel;
use sd_core::{
    Detection, DetectionStats, PrepScratch, Prepared, PreparedDetector, SearchWorkspace,
    SphereDecoder,
};
use sd_fpga::{FpgaConfig, FpgaSphereDecoder};
use sd_wireless::montecarlo::generate_frames;
use sd_wireless::{Constellation, FrameData, LinkConfig, Modulation};
use std::time::Instant;

/// The SNR grid of every figure in the paper (Sec. IV).
pub const SNR_GRID_DB: [f64; 5] = [4.0, 8.0, 12.0, 16.0, 20.0];

/// All paper experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 10] = [
    "table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "nodes",
];

/// Extension experiment ids (beyond the paper's evaluation).
pub const EXT_EXPERIMENTS: [&str; 9] = [
    "ext-fp16",
    "ext-ordering",
    "ext-dualpipe",
    "ext-multipe",
    "ext-robustness",
    "ext-companions",
    "ext-ofdm",
    "ext-coded",
    "ext-serve",
];

/// Run one experiment by id; returns its report.
pub fn run(id: &str, opts: &RunOpts) -> Option<Report> {
    let report = match id {
        "table1" => tables::table1(opts),
        "table2" => tables::table2(opts),
        "fig6" => figures::fig_exec_time(opts, 6, 10, Modulation::Qam4),
        "fig7" => figures::fig7_ber(opts),
        "fig8" => figures::fig_exec_time(opts, 8, 15, Modulation::Qam4),
        "fig9" => figures::fig_exec_time(opts, 9, 20, Modulation::Qam4),
        "fig10" => figures::fig_exec_time(opts, 10, 10, Modulation::Qam16),
        "fig11" => figures::fig11_gpu(opts),
        "fig12" => figures::fig12_detectors(opts),
        "nodes" => figures::nodes_claim(opts),
        "ext-fp16" => extensions::ext_fp16(opts),
        "ext-ordering" => extensions::ext_ordering(opts),
        "ext-dualpipe" => extensions::ext_dualpipe(opts),
        "ext-multipe" => extensions::ext_multipe(opts),
        "ext-robustness" => extensions::ext_robustness(opts),
        "ext-companions" => extensions::ext_companions(opts),
        "ext-ofdm" => extensions::ext_ofdm(opts),
        "ext-coded" => extensions::ext_coded(opts),
        "ext-serve" => extensions::ext_serve(opts),
        _ => return None,
    };
    Some(report)
}

/// Shared frame set for one operating point (same noise realizations for
/// every platform).
pub fn point_frames(
    n: usize,
    modulation: Modulation,
    snr_db: f64,
    frames: usize,
    seed: u64,
) -> (Constellation, Vec<FrameData>) {
    let cfg = LinkConfig::square(n, modulation, snr_db)
        .with_frames(frames)
        .with_seed(seed ^ (snr_db.to_bits() >> 17));
    generate_frames(&cfg)
}

/// Per-platform mean decode times (ms) at one operating point.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointTiming {
    /// Native Rust wall-clock of the software decoder on this host.
    pub cpu_native_ms: f64,
    /// Modeled 64-core MKL CPU (paper's platform).
    pub cpu_model_ms: f64,
    /// FPGA baseline variant (modeled).
    pub fpga_base_ms: f64,
    /// FPGA optimized variant (modeled).
    pub fpga_opt_ms: f64,
    /// Mean node expansions per frame.
    pub expansions: f64,
}

/// Measure every platform on shared frames.
pub fn measure_point(n: usize, modulation: Modulation, snr_db: f64, opts: &RunOpts) -> PointTiming {
    let frames_n = opts.frames();
    let (constellation, frames) = point_frames(n, modulation, snr_db, frames_n, opts.seed);
    let cpu: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
    let cpu_model = CpuTimeModel::mkl_64core();
    let base = FpgaSphereDecoder::new(FpgaConfig::baseline(modulation, n), constellation.clone());
    let opt = FpgaSphereDecoder::new(FpgaConfig::optimized(modulation, n), constellation);

    let mut t = PointTiming::default();
    // Native wall-clock (serial, as the per-frame latency figure), driven
    // through the unified engine API with reused preprocessing and search
    // scratch — the same zero-allocation decode path the serve runtime and
    // alloc-free gate exercise.
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let t0 = Instant::now();
    let mut detections = Vec::with_capacity(frames.len());
    for f in &frames {
        let mut det = Detection::default();
        cpu.prepare_frame_into(f, &mut scratch, &mut prep);
        let r2 = cpu.initial_radius_sqr(f.h.rows(), f.noise_variance);
        cpu.detect_prepared_into(&prep, r2, &mut ws, &mut det);
        detections.push(std::hint::black_box(det));
    }
    t.cpu_native_ms = t0.elapsed().as_secs_f64() * 1e3 / frames.len() as f64;

    // Fold every frame's instrumentation in one pass; the time model is
    // linear in the aggregate, so this matches per-frame summation exactly.
    let total: DetectionStats = detections.iter().map(|d| &d.stats).sum();
    t.cpu_model_ms = cpu_model.decode_seconds(&total) * 1e3 / frames.len() as f64;
    t.expansions = total.nodes_expanded as f64 / frames.len() as f64;

    for f in &frames {
        t.fpga_base_ms += base.decode_with_report(f).decode_seconds * 1e3;
        t.fpga_opt_ms += opt.decode_with_report(f).decode_seconds * 1e3;
    }
    t.fpga_base_ms /= frames.len() as f64;
    t.fpga_opt_ms /= frames.len() as f64;
    t
}
