//! Figures 6–12 and the Sec. IV-F node-count claim.

use super::{measure_point, point_frames, SNR_GRID_DB};
use crate::chart::AsciiChart;
use crate::report::{Cell, Report, RunOpts};
use crate::GeosphereModel;
use sd_core::{BestFirstSd, BfsGemmSd, Detector, MmseDetector, SphereDecoder, ZfDetector};
use sd_fpga::{FpgaConfig, FpgaSphereDecoder};
use sd_gpu::GpuSphereDecoder;
use sd_wireless::{run_link_parallel, Constellation, LinkConfig, Modulation, SnrConvention};
use std::time::Instant;

/// Paper anchor points for the execution-time figures:
/// `(figure, snr_db) -> (cpu_ms, fpga_opt_ms)` where published.
fn paper_anchor(figure: u32, snr_db: f64) -> Option<(f64, f64)> {
    match (figure, snr_db as i64) {
        (6, 4) => Some((7.0, 1.4)),     // 5× speedup at 4 dB (Sec. IV-C)
        (8, 4) => Some((30.0, 5.0)),    // 6.1× at 4 dB (Sec. IV-D)
        (9, 8) => Some((88.8, 9.9)),    // 9× at 8 dB
        (10, 4) => Some((100.0, 25.0)), // 4× at 4 dB (Sec. IV-E)
        _ => None,
    }
}

/// Figs. 6 / 8 / 9 / 10: execution time vs SNR for one configuration.
pub fn fig_exec_time(opts: &RunOpts, figure: u32, n: usize, modulation: Modulation) -> Report {
    let mut r = Report::new(
        format!("fig{figure}"),
        format!("Fig. {figure} — execution time, {n}×{n} MIMO, {modulation}"),
        &[
            "SNR(dB)",
            "CPU model ms",
            "CPU native ms",
            "FPGA base ms",
            "FPGA opt ms",
            "speedup(model)",
            "expansions",
            "paper CPU/FPGA ms",
        ],
    );
    let mut rt_snr_fpga: Option<f64> = None;
    let mut rt_snr_cpu: Option<f64> = None;
    let mut chart = AsciiChart::new(format!("Fig. {figure}"), "decode time (ms)", "SNR dB")
        .with_reference(10.0, "10 ms real-time budget");
    let mut cpu_pts = Vec::new();
    let mut base_pts = Vec::new();
    let mut opt_pts = Vec::new();
    for &snr in &SNR_GRID_DB {
        let t = measure_point(n, modulation, snr, opts);
        cpu_pts.push((snr, t.cpu_model_ms));
        base_pts.push((snr, t.fpga_base_ms));
        opt_pts.push((snr, t.fpga_opt_ms));
        if t.fpga_opt_ms <= 10.0 && rt_snr_fpga.is_none() {
            rt_snr_fpga = Some(snr);
        }
        if t.cpu_model_ms <= 10.0 && rt_snr_cpu.is_none() {
            rt_snr_cpu = Some(snr);
        }
        let anchor = paper_anchor(figure, snr)
            .map(|(c, f)| format!("{c} / {f}"))
            .unwrap_or_default();
        r.row(vec![
            Cell::Num(snr, 0),
            Cell::Num(t.cpu_model_ms, 3),
            Cell::Num(t.cpu_native_ms, 3),
            Cell::Num(t.fpga_base_ms, 3),
            Cell::Num(t.fpga_opt_ms, 3),
            Cell::Text(format!("{:.1}×", t.cpu_model_ms / t.fpga_opt_ms)),
            Cell::Num(t.expansions, 0),
            anchor.into(),
        ]);
    }
    chart.add_series("CPU model", 'C', cpu_pts);
    chart.add_series("FPGA baseline", 'b', base_pts);
    chart.add_series("FPGA optimized", 'F', opt_pts);
    r.attach_chart(chart.render(14));
    r.note(format!(
        "Real-time (≤10 ms) reached at: FPGA-opt {} dB, CPU-model {} dB.",
        rt_snr_fpga.map_or("never".into(), |s| format!("{s}")),
        rt_snr_cpu.map_or("never".into(), |s| format!("{s}")),
    ));
    r.note("'CPU model' = calibrated 64-core MKL model; 'CPU native' = this host's wall-clock.");
    r
}

/// Fig. 7: BER vs SNR for 10×10 4-QAM under both SNR conventions.
pub fn fig7_ber(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "fig7",
        "Fig. 7 — BER, 10×10 MIMO, 4-QAM",
        &[
            "SNR(dB)",
            "BER (per-rx-antenna)",
            "BER (per-symbol)",
            "bits",
            "paper claim",
        ],
    );
    let n = 10;
    let frames = (opts.frames() * 150).max(1_000);
    let c = Constellation::new(Modulation::Qam4);
    let sd: SphereDecoder<f32> = SphereDecoder::new(c);
    for &snr in &SNR_GRID_DB {
        let mut bers = [0.0f64; 2];
        let mut bits = 0u64;
        for (i, conv) in [SnrConvention::PerReceiveAntenna, SnrConvention::PerSymbol]
            .into_iter()
            .enumerate()
        {
            let cfg = LinkConfig::square(n, Modulation::Qam4, snr)
                .with_convention(conv)
                .with_frames(frames)
                .with_seed(opts.seed);
            let stats = run_link_parallel(&cfg, |f| sd.detect(f).indices);
            bers[i] = stats.ber();
            bits = stats.errors.bits;
        }
        let claim = if snr as i64 == 4 { "< 1e-2" } else { "" };
        r.row(vec![
            Cell::Num(snr, 0),
            Cell::Sci(bers[0]),
            Cell::Sci(bers[1]),
            Cell::Int(bits),
            claim.into(),
        ]);
    }
    r.note(
        "The paper's '<1e-2 at 4 dB' holds under the per-symbol convention of its reference [1];",
    );
    r.note(
        "under the standard per-receive-antenna convention the same BER is reached near 10-12 dB.",
    );
    r.note("Both curves are exact-ML (the decoder is radius-complete), so this is purely the SNR definition.");
    r
}

/// Fig. 11: FPGA-optimized vs the GPU GEMM-BFS baseline.
pub fn fig11_gpu(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "fig11",
        "Fig. 11 — FPGA-optimized vs GPU GEMM-BFS [1], 10×10 MIMO, 4-QAM",
        &[
            "SNR(dB)",
            "GPU model ms",
            "FPGA opt ms",
            "speedup",
            "GPU children",
            "paper",
        ],
    );
    let n = 10;
    let modulation = Modulation::Qam4;
    let constellation = Constellation::new(modulation);
    let gpu = GpuSphereDecoder::new(constellation.clone());
    let fpga = FpgaSphereDecoder::new(FpgaConfig::optimized(modulation, n), constellation);
    let mut speedups = Vec::new();
    let mut chart = AsciiChart::new("Fig. 11", "decode time (ms)", "SNR dB")
        .with_reference(10.0, "10 ms real-time budget");
    let mut gpu_pts = Vec::new();
    let mut fpga_pts = Vec::new();
    for &snr in &SNR_GRID_DB {
        let (_, frames) = point_frames(n, modulation, snr, opts.frames(), opts.seed);
        let mut gpu_ms = 0.0;
        let mut fpga_ms = 0.0;
        let mut children = 0u64;
        for f in &frames {
            let g = gpu.decode_with_report(f);
            gpu_ms += g.decode_seconds * 1e3;
            children += g.detection.stats.nodes_generated;
            fpga_ms += fpga.decode_with_report(f).decode_seconds * 1e3;
        }
        gpu_ms /= frames.len() as f64;
        fpga_ms /= frames.len() as f64;
        children /= frames.len() as u64;
        let speedup = gpu_ms / fpga_ms;
        speedups.push(speedup);
        gpu_pts.push((snr, gpu_ms));
        fpga_pts.push((snr, fpga_ms));
        let anchor = match snr as i64 {
            4 => "FPGA 0.97 ms",
            12 => "GPU 6 ms",
            _ => "",
        };
        r.row(vec![
            Cell::Num(snr, 0),
            Cell::Num(gpu_ms, 3),
            Cell::Num(fpga_ms, 3),
            Cell::Text(format!("{speedup:.0}×")),
            Cell::Int(children),
            anchor.into(),
        ]);
    }
    chart.add_series("GPU GEMM-BFS (A100 model)", 'G', gpu_pts);
    chart.add_series("FPGA optimized", 'F', fpga_pts);
    r.attach_chart(chart.render(14));
    let geo_mean = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    r.note(format!(
        "Geo-mean speedup {:.0}× (paper: average 57×). BFS pays a per-level sync tax and explores",
        geo_mean.exp()
    ));
    r.note("orders of magnitude more nodes at low SNR (Sec. IV-F).");
    r
}

/// Fig. 12: decoding-time comparison against ZF, MMSE and Geosphere.
pub fn fig12_detectors(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "fig12",
        "Fig. 12 — decoding time comparison, 10×10 MIMO, 4-QAM",
        &[
            "detector",
            "platform",
            "SNR(dB)",
            "time ms",
            "BER@4dB",
            "exact ML?",
            "paper",
        ],
    );
    let n = 10;
    let modulation = Modulation::Qam4;
    let constellation = Constellation::new(modulation);
    let (_, frames) = point_frames(n, modulation, 4.0, opts.frames(), opts.seed);
    let ber_frames = (opts.frames() * 100).max(800);

    // BER of each detector at 4 dB on a common long run.
    let ber_of = |det: &dyn Detector| -> f64 {
        let cfg = LinkConfig::square(n, modulation, 4.0)
            .with_frames(ber_frames)
            .with_seed(opts.seed);
        run_link_parallel(&cfg, |f| det.detect(f).indices).ber()
    };

    // FPGA-optimized at 4 dB.
    let fpga = FpgaSphereDecoder::new(FpgaConfig::optimized(modulation, n), constellation.clone());
    let fpga_ms = frames
        .iter()
        .map(|f| fpga.decode_with_report(f).decode_seconds * 1e3)
        .sum::<f64>()
        / frames.len() as f64;
    let sd32: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
    r.row(vec![
        "SD (this work)".into(),
        "FPGA U280 (model)".into(),
        Cell::Num(4.0, 0),
        Cell::Num(fpga_ms, 3),
        Cell::Sci(ber_of(&sd32)),
        "yes".into(),
        "~1 ms @ 4 dB".into(),
    ]);

    // Linear detectors: native wall-clock (they are microsecond-fast).
    for (name, det, paper) in [
        (
            "ZF",
            Box::new(ZfDetector::new(constellation.clone())) as Box<dyn Detector>,
            "fast, poor BER",
        ),
        (
            "MMSE",
            Box::new(MmseDetector::new(constellation.clone())),
            "fast, poor BER",
        ),
    ] {
        let t0 = Instant::now();
        for f in &frames {
            std::hint::black_box(det.detect(f));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / frames.len() as f64;
        r.row(vec![
            name.into(),
            "CPU native".into(),
            Cell::Num(4.0, 0),
            Cell::Num(ms, 4),
            Cell::Sci(ber_of(det.as_ref())),
            "no".into(),
            paper.into(),
        ]);
    }

    // Geosphere on WARP v3: exact sorted-DFS traversal, radio-platform
    // cost model anchored at 11 ms @ 20 dB.
    let geo = GeosphereModel::warp_v3();
    let sd: SphereDecoder<f32> = SphereDecoder::new(constellation);
    for snr in [20.0, 4.0] {
        let (_, geo_frames) = point_frames(n, modulation, snr, opts.frames(), opts.seed);
        let ms = geo_frames
            .iter()
            .map(|f| geo.decode_seconds(&sd.detect(f).stats) * 1e3)
            .sum::<f64>()
            / geo_frames.len() as f64;
        r.row(vec![
            "Geosphere [14]".into(),
            "WARP v3 (model)".into(),
            Cell::Num(snr, 0),
            Cell::Num(ms, 2),
            Cell::Blank,
            "yes".into(),
            if snr == 20.0 { "11 ms @ 20 dB" } else { "" }.into(),
        ]);
    }
    r.note("Paper: 11× speedup over Geosphere's 11 ms while operating at 4 dB instead of 20 dB.");
    r.note(
        "Linear detectors are fastest but their BER makes them unusable at these SNRs (Sec. I).",
    );
    r
}

/// Sec. IV-F claim: the sorted-DFS prunes the search to <1% of the
/// explored-node count of BFS (and of the full tree).
pub fn nodes_claim(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "nodes",
        "Sec. IV-F — explored nodes: sorted DFS vs best-first vs BFS (10×10, 4-QAM)",
        &[
            "SNR(dB)",
            "DFS nodes",
            "BestFS nodes",
            "BFS nodes",
            "DFS/BFS",
            "DFS % of full tree",
        ],
    );
    let n = 10;
    let modulation = Modulation::Qam4;
    let constellation = Constellation::new(modulation);
    let dfs: SphereDecoder<f64> = SphereDecoder::new(constellation.clone());
    let bf: BestFirstSd<f64> = BestFirstSd::new(constellation.clone());
    let bfs: BfsGemmSd<f64> = BfsGemmSd::new(constellation);
    let full = 4f64.powi(n as i32);
    for &snr in &SNR_GRID_DB {
        let (_, frames) = point_frames(n, modulation, snr, opts.frames(), opts.seed);
        let mut nd = 0u64;
        let mut nbf = 0u64;
        let mut nb = 0u64;
        for f in &frames {
            nd += dfs.detect(f).stats.nodes_generated;
            nbf += bf.detect(f).stats.nodes_generated;
            nb += bfs.detect(f).stats.nodes_generated;
        }
        let count = frames.len() as u64;
        r.row(vec![
            Cell::Num(snr, 0),
            Cell::Int(nd / count),
            Cell::Int(nbf / count),
            Cell::Int(nb / count),
            Cell::Text(format!("{:.1}%", 100.0 * nd as f64 / nb as f64)),
            Cell::Text(format!("{:.3}%", 100.0 * (nd / count) as f64 / full)),
        ]);
    }
    r.note("Paper: the DFS+sorting strategy 'prunes the search space to less than 1% of the");
    r.note("number of explored nodes' of the BFS approach (strongest at low SNR).");
    r
}
