//! Table I (resource utilization) and Table II (power profile).

use super::measure_point;
use crate::report::{Cell, Report, RunOpts};
use sd_fpga::{energy_joules, estimate_resources, CpuPowerModel, FpgaConfig, FpgaPowerModel};
use sd_wireless::Modulation;

/// Table I: FPGA resource utilization, baseline vs optimized, 4/16-QAM.
pub fn table1(_opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "table1",
        "Table I — FPGA resource utilization (Alveo U280, 10×10 designs)",
        &[
            "design",
            "freq(MHz)",
            "LUTs",
            "FFs",
            "DSPs",
            "BRAMs",
            "URAMs",
            "2nd pipeline",
        ],
    );
    let paper: [(&str, FpgaConfig, [f64; 5]); 4] = [
        (
            "Baseline 4-QAM",
            FpgaConfig::baseline(Modulation::Qam4, 10),
            [29.0, 20.0, 8.0, 11.0, 14.0],
        ),
        (
            "Baseline 16-QAM",
            FpgaConfig::baseline(Modulation::Qam16, 10),
            [50.0, 27.0, 15.0, 14.0, 60.0],
        ),
        (
            "Optimized 4-QAM",
            FpgaConfig::optimized(Modulation::Qam4, 10),
            [11.0, 7.0, 3.0, 8.0, 7.0],
        ),
        (
            "Optimized 16-QAM",
            FpgaConfig::optimized(Modulation::Qam16, 10),
            [23.0, 11.0, 7.0, 10.0, 30.0],
        ),
    ];
    for (name, config, paper_vals) in paper {
        let u = estimate_resources(&config);
        r.row(vec![
            name.into(),
            Cell::Num(u.freq_mhz, 0),
            Cell::Text(format!("{:.0}%", u.luts * 100.0)),
            Cell::Text(format!("{:.0}%", u.ffs * 100.0)),
            Cell::Text(format!("{:.0}%", u.dsps * 100.0)),
            Cell::Text(format!("{:.0}%", u.brams * 100.0)),
            Cell::Text(format!("{:.0}%", u.urams * 100.0)),
            Cell::Text(
                if u.fits_second_pipeline() {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ),
        ]);
        r.row(vec![
            "  (paper)".into(),
            Cell::Num(u.freq_mhz, 0),
            Cell::Text(format!("{:.0}%", paper_vals[0])),
            Cell::Text(format!("{:.0}%", paper_vals[1])),
            Cell::Text(format!("{:.0}%", paper_vals[2])),
            Cell::Text(format!("{:.0}%", paper_vals[3])),
            Cell::Text(format!("{:.0}%", paper_vals[4])),
            Cell::Blank,
        ]);
    }
    r.note("Area model is anchored to the paper's post-route results and interpolates in P and N.");
    r.note("Optimized designs leave room for a second pipeline (<50% everywhere) — Sec. III-C4.");
    let o64 = estimate_resources(&FpgaConfig::optimized(Modulation::Qam64, 10));
    r.note(format!(
        "Extrapolation: optimized 64-QAM would need {:.0}% URAM → does not fit (explains the paper's 16-QAM ceiling).",
        o64.urams * 100.0
    ));
    r
}

/// Table II: power / exec time / energy, CPU vs FPGA, four workloads.
pub fn table2(opts: &RunOpts) -> Report {
    let mut r = Report::new(
        "table2",
        "Table II — power profile and energy (4 dB operating point)",
        &[
            "workload",
            "CPU W",
            "FPGA W",
            "CPU ms (model)",
            "CPU ms (paper)",
            "FPGA ms (model)",
            "FPGA ms (paper)",
            "energy reduction",
            "paper",
        ],
    );
    let fpga_power = FpgaPowerModel::u280_kernel();
    let cpu_power = CpuPowerModel::ryzen_64core();
    // Paper rows: (label, modulation, n, cpu_ms, fpga_ms, reduction).
    let rows: [(&str, Modulation, usize, f64, f64, f64); 4] = [
        ("10×10 4-QAM", Modulation::Qam4, 10, 7.0, 2.0, 35.8),
        ("15×15 4-QAM", Modulation::Qam4, 15, 44.3, 9.4, 36.8),
        ("20×20 4-QAM", Modulation::Qam4, 20, 350.6, 102.5, 38.4),
        ("10×10 16-QAM", Modulation::Qam16, 10, 176.6, 46.88, 41.8),
    ];
    for (label, modulation, n, cpu_paper_ms, fpga_paper_ms, paper_red) in rows {
        let timing = measure_point(n, modulation, 4.0, opts);
        let usage = estimate_resources(&FpgaConfig::optimized(modulation, n));
        let p_fpga = fpga_power.power_watts(&usage, n);
        let p_cpu = cpu_power.power_watts(n, modulation.order());
        let e_cpu = energy_joules(p_cpu, timing.cpu_model_ms / 1e3);
        let e_fpga = energy_joules(p_fpga, timing.fpga_opt_ms / 1e3);
        let reduction = e_cpu / e_fpga;
        r.row(vec![
            label.into(),
            Cell::Num(p_cpu, 0),
            Cell::Num(p_fpga, 1),
            Cell::Num(timing.cpu_model_ms, 1),
            Cell::Num(cpu_paper_ms, 1),
            Cell::Num(timing.fpga_opt_ms, 1),
            Cell::Num(fpga_paper_ms, 1),
            Cell::Text(format!("{reduction:.1}×")),
            Cell::Text(format!("{paper_red:.1}×")),
        ]);
    }
    r.note("Paper CPU powers: 82 / 93 / 135 / 142 W; FPGA: 8 / 11.7 / 12 / 12.8 W (models within ±20%).");
    r.note("Paper geo-mean energy reduction: 38.1×.");
    r
}
