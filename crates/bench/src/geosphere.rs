//! Cost model of Geosphere on the Rice WARP v3 radio (Fig. 12).
//!
//! Geosphere (Nikitopoulos et al., SIGCOMM'14) is an *exact* depth-first
//! sphere decoder — algorithmically our `SphereDecoder` — deployed on the
//! WARP v3 software-defined-radio platform, where per-node processing is
//! memory-bound and the clock is an order of magnitude below the U280's.
//! The model charges a per-expansion cost anchored to the paper's quoted
//! operating point: 11 ms to decode 4-QAM 10×10 at 20 dB.

use sd_core::DetectionStats;
use serde::{Deserialize, Serialize};

/// WARP-v3 Geosphere execution-time model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeosphereModel {
    /// Seconds per node expansion on the radio platform.
    pub per_expansion_s: f64,
    /// Fixed per-frame overhead (frame handling, I/O into the decoder).
    pub frame_overhead_s: f64,
}

impl GeosphereModel {
    /// Anchored to 11 ms @ 20 dB, 4-QAM 10×10 (≈15 expansions/frame on
    /// our traces at that SNR).
    pub fn warp_v3() -> Self {
        GeosphereModel {
            per_expansion_s: 360e-6,
            frame_overhead_s: 5e-3,
        }
    }

    /// Modeled decode time for one detection's statistics.
    pub fn decode_seconds(&self, stats: &DetectionStats) -> f64 {
        self.frame_overhead_s + stats.nodes_expanded as f64 * self.per_expansion_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_point_lands_near_11ms() {
        let m = GeosphereModel::warp_v3();
        let stats = DetectionStats {
            nodes_expanded: 16,
            ..Default::default()
        };
        let t = m.decode_seconds(&stats);
        assert!((8e-3..14e-3).contains(&t), "anchor {t:.2e}");
    }

    #[test]
    fn grows_with_search_effort() {
        let m = GeosphereModel::warp_v3();
        let lo = DetectionStats {
            nodes_expanded: 10,
            ..Default::default()
        };
        let hi = DetectionStats {
            nodes_expanded: 1000,
            ..Default::default()
        };
        assert!(m.decode_seconds(&hi) > 10.0 * m.decode_seconds(&lo));
    }
}
