//! Analytic model of the paper's optimized multi-core CPU baseline.
//!
//! The paper's CPU implementation drives Intel MKL from Boost-threaded
//! C++: every node expansion issues a small GEMM, so the decode time is
//! dominated by per-call dispatch (thread wake-up, MKL small-matrix entry,
//! cache misses on the tree state) rather than by arithmetic. The model
//! therefore charges
//!
//! ```text
//! t = expansions · t_dispatch + flops / (efficiency · peak)
//! ```
//!
//! with `t_dispatch` calibrated so the 10×10 4-QAM @ 4 dB point lands on
//! the paper's 7 ms (Fig. 6 / Table II). Native Rust wall-clock is always
//! reported alongside; this model exists to compare *shapes* against a
//! machine we don't have.

use sd_core::DetectionStats;
use serde::{Deserialize, Serialize};

/// Calibrated CPU execution-time model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuTimeModel {
    /// Seconds per node expansion (small-GEMM dispatch + irregular reads).
    pub dispatch_s: f64,
    /// Sustained FLOP/s the threaded MKL achieves on these tiny GEMMs.
    pub sustained_flops: f64,
}

impl CpuTimeModel {
    /// Coefficients anchored to Table II / Fig. 6 (see module docs).
    pub fn mkl_64core() -> Self {
        CpuTimeModel {
            dispatch_s: 6.5e-6,
            sustained_flops: 5e9,
        }
    }

    /// Modeled decode time for one detection's statistics.
    pub fn decode_seconds(&self, stats: &DetectionStats) -> f64 {
        stats.nodes_expanded as f64 * self.dispatch_s + stats.flops as f64 / self.sustained_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(expansions: u64, flops: u64) -> DetectionStats {
        DetectionStats {
            nodes_expanded: expansions,
            flops,
            ..Default::default()
        }
    }

    #[test]
    fn anchor_point_lands_on_7ms() {
        // ~1.07k expansions at 10×10 4-QAM @ 4 dB (measured) → ≈7 ms.
        let m = CpuTimeModel::mkl_64core();
        let t = m.decode_seconds(&stats(1070, 400_000));
        assert!((6e-3..8.5e-3).contains(&t), "anchor time {t:.2e}");
    }

    #[test]
    fn dispatch_dominates_for_tiny_gemms() {
        let m = CpuTimeModel::mkl_64core();
        let t = m.decode_seconds(&stats(1000, 500_000));
        let dispatch = 1000.0 * m.dispatch_s;
        assert!(dispatch / t > 0.9);
    }

    #[test]
    fn time_scales_linearly_with_expansions() {
        let m = CpuTimeModel::mkl_64core();
        let t1 = m.decode_seconds(&stats(100, 0));
        let t2 = m.decode_seconds(&stats(200, 0));
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn flops_term_matters_for_huge_batches() {
        let m = CpuTimeModel::mkl_64core();
        let small = m.decode_seconds(&stats(10, 1_000));
        let big = m.decode_seconds(&stats(10, 10_000_000_000));
        assert!(big > small + 1.0);
    }
}
