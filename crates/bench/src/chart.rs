//! Minimal ASCII line charts for the figure experiments.
//!
//! The paper's evaluation figures are log-scale time/BER vs SNR plots;
//! the repro harness renders the same series as console charts so the
//! crossovers (real-time line, who-wins ordering) are visible at a
//! glance without plotting tools.

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Marker character.
    pub marker: char,
    /// `(x, y)` points; `y` must be positive for log charts.
    pub points: Vec<(f64, f64)>,
}

/// A log-y ASCII chart over a shared x grid.
#[derive(Clone, Debug, Default)]
pub struct AsciiChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis label.
    pub x_label: String,
    /// Optional horizontal reference line (e.g. the 10 ms budget).
    pub reference: Option<(f64, String)>,
    series: Vec<Series>,
}

impl AsciiChart {
    /// New chart.
    pub fn new(
        title: impl Into<String>,
        y_label: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        AsciiChart {
            title: title.into(),
            y_label: y_label.into(),
            x_label: x_label.into(),
            reference: None,
            series: Vec::new(),
        }
    }

    /// Add a horizontal reference line.
    pub fn with_reference(mut self, y: f64, label: impl Into<String>) -> Self {
        assert!(y > 0.0, "reference must be positive on a log chart");
        self.reference = Some((y, label.into()));
        self
    }

    /// Add a series (positive y values only; others are dropped).
    pub fn add_series(&mut self, label: impl Into<String>, marker: char, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            marker,
            points: points.into_iter().filter(|&(_, y)| y > 0.0).collect(),
        });
    }

    /// Render with `rows` vertical resolution.
    pub fn render(&self, rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {} ({} vs {})",
            self.title, self.y_label, self.x_label
        );
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() || rows < 2 {
            let _ = writeln!(out, "  (no data)");
            return out;
        }
        let mut xs: Vec<f64> = all.iter().map(|p| p.0).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for &(_, y) in &all {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if let Some((r, _)) = self.reference {
            y_min = y_min.min(r);
            y_max = y_max.max(r);
        }
        let (ly_min, ly_max) = (y_min.log10().floor(), y_max.log10().ceil());
        let span = (ly_max - ly_min).max(1.0);
        let col_w = 7usize;
        let row_of = |y: f64| -> usize {
            let frac = (y.log10() - ly_min) / span;
            ((1.0 - frac) * (rows as f64 - 1.0))
                .round()
                .clamp(0.0, rows as f64 - 1.0) as usize
        };
        let mut grid = vec![vec![' '; xs.len() * col_w]; rows];
        if let Some((r, _)) = self.reference {
            let rr = row_of(r);
            for cell in grid[rr].iter_mut() {
                *cell = '·';
            }
        }
        for s in &self.series {
            for &(x, y) in &s.points {
                if let Some(xi) = xs.iter().position(|&g| (g - x).abs() < 1e-9) {
                    let rr = row_of(y);
                    grid[rr][xi * col_w + col_w / 2] = s.marker;
                }
            }
        }
        for (i, row) in grid.iter().enumerate() {
            // Left axis: decade labels at the top/bottom rows.
            let frac = 1.0 - i as f64 / (rows as f64 - 1.0);
            let decade = ly_min + frac * span;
            let label =
                if i == 0 || i + 1 == rows || (decade - decade.round()).abs() < 0.5 / rows as f64 {
                    format!("{:>8.0e}", 10f64.powf(decade.round()))
                } else {
                    " ".repeat(8)
                };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "  {label} |{line}");
        }
        let mut axis = String::new();
        for &x in &xs {
            let _ = write!(axis, "{:^col_w$}", x);
        }
        let _ = writeln!(out, "  {:>8}  {axis} {}", "", self.x_label);
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{} {}", s.marker, s.label))
            .collect();
        let mut legend_line = legend.join("   ");
        if let Some((_, ref rl)) = self.reference {
            legend_line.push_str(&format!("   · {rl}"));
        }
        let _ = writeln!(out, "  {legend_line}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> AsciiChart {
        let mut c = AsciiChart::new("test", "time", "SNR").with_reference(10.0, "budget");
        c.add_series("a", '*', vec![(4.0, 100.0), (8.0, 10.0), (12.0, 1.0)]);
        c.add_series("b", 'o', vec![(4.0, 5.0), (8.0, 0.5), (12.0, 0.05)]);
        c
    }

    #[test]
    fn render_contains_markers_and_legend() {
        let s = chart().render(12);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("· budget"));
        assert!(s.contains("* a") && s.contains("o b"));
        assert!(s.contains("SNR"));
    }

    #[test]
    fn higher_values_render_higher() {
        let s = chart().render(12);
        let lines: Vec<&str> = s.lines().collect();
        let row_of = |m: char, col_hint: usize| -> usize {
            lines
                .iter()
                .position(|l| l.chars().nth(col_hint).is_some_and(|_| l.contains(m)))
                .unwrap()
        };
        // series a (100 at x=4) must appear above series b (5 at x=4).
        assert!(row_of('*', 0) < row_of('o', 0));
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = AsciiChart::new("empty", "y", "x");
        assert!(c.render(10).contains("no data"));
    }

    #[test]
    fn non_positive_points_dropped() {
        let mut c = AsciiChart::new("t", "y", "x");
        c.add_series("s", '#', vec![(1.0, 0.0), (2.0, -1.0), (3.0, 2.0)]);
        assert_eq!(c.series[0].points.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_reference_rejected() {
        let _ = AsciiChart::new("t", "y", "x").with_reference(0.0, "r");
    }
}
