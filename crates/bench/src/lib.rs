//! # sd-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation (Sec. IV). Each experiment prints
//! paper-vs-measured rows and writes a CSV under `results/`.
//!
//! Run `cargo run --release -p sd-bench --bin repro -- all` (or a single
//! experiment id: `table1 table2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! nodes`).
//!
//! Two platform stand-ins live here rather than in the simulators:
//!
//! * [`cpu_model`] — the paper-shaped analytic model of the 64-core MKL
//!   CPU baseline (per-expansion kernel-dispatch cost dominates small
//!   GEMMs), used alongside native wall-clock measurements;
//! * [`geosphere`] — the Fig. 12 cost model of Geosphere on the WARP v3
//!   radio platform, anchored to its published 11 ms @ 20 dB point.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chart;
pub mod cpu_model;
pub mod experiments;
pub mod geosphere;
pub mod report;

pub use chart::AsciiChart;
pub use cpu_model::CpuTimeModel;
pub use geosphere::GeosphereModel;
pub use report::{Cell, Report, RunOpts};
