//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # every experiment (default)
//! repro fig6 fig11          # a subset
//! repro all --fast          # smoke run with few frames
//! repro all --frames 100    # more Monte-Carlo frames per point
//! repro all --seed 42
//! repro ext                 # the extension experiments
//! repro list                # show experiment ids
//! ```
//!
//! Console tables go to stdout; CSVs land in `results/<id>.csv`.

use sd_bench::experiments::{run, ALL_EXPERIMENTS, EXT_EXPERIMENTS};
use sd_bench::RunOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::default();
    let mut ids: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => opts.fast = true,
            "--frames" => {
                i += 1;
                opts.frames = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--frames needs a number"));
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "list" => {
                println!("paper experiments: {}", ALL_EXPERIMENTS.join(" "));
                println!("extensions:        {}", EXT_EXPERIMENTS.join(" "));
                return;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "ext" => ids.extend(EXT_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    println!(
        "mimo-sd repro — frames/point: {}{}, seed {:#x}",
        opts.frames(),
        if opts.fast { " (fast)" } else { "" },
        opts.seed
    );
    let t0 = std::time::Instant::now();
    for id in &ids {
        match run(id, &opts) {
            Some(report) => {
                let path = report.emit();
                println!("  -> {}", path.display());
            }
            None => eprintln!("unknown experiment '{id}' (try 'repro list')"),
        }
    }
    println!("\ndone in {:.1}s", t0.elapsed().as_secs_f64());
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
